"""Latency watchdog: decide when a plan is stale enough to replan.

The plan search predicts the exposed preprocessing latency of its own
placement; the runtime measures what actually happened. When the measured
exposure persistently diverges from the prediction -- drifted inputs
mis-sizing kernels against stage capacity (§10) -- or faults arrive faster
than recovery can amortize, the watchdog asks for plan regeneration.

The trigger is *edge*-triggered with a windowed signal: it fires once when
the breach condition crosses the threshold and re-arms only after the
signal returns below it (or after :meth:`reset` following a replan), so a
sustained breach produces exactly one regeneration rather than one per
iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["WatchdogDecision", "LatencyWatchdog"]


@dataclass(frozen=True)
class WatchdogDecision:
    """Outcome of one watchdog observation."""

    replan: bool
    error: float
    fault_rate: float
    reason: str = ""


@dataclass
class LatencyWatchdog:
    """Windowed, edge-triggered staleness detector for active plans.

    ``error_threshold`` is the tolerated mean relative error between
    predicted and measured exposed latency over the last ``window``
    iterations; ``fault_rate_threshold`` is the tolerated mean number of
    faults per iteration over the same window.
    """

    error_threshold: float = 0.5
    fault_rate_threshold: float = 2.0
    window: int = 4
    _errors: deque = field(default_factory=deque, repr=False)
    _faults: deque = field(default_factory=deque, repr=False)
    _armed: bool = field(default=True, repr=False)
    _suppressed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.error_threshold <= 0:
            raise ValueError("error_threshold must be positive")
        if self.fault_rate_threshold <= 0:
            raise ValueError("fault_rate_threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    # ------------------------------------------------------------------

    def observe(
        self,
        predicted_exposed_us: float,
        measured_exposed_us: float,
        num_faults: int = 0,
    ) -> WatchdogDecision:
        """Feed one iteration's outcome; decide whether to replan."""
        baseline = max(predicted_exposed_us, 1.0)
        error = abs(measured_exposed_us - predicted_exposed_us) / baseline
        self._errors.append(error)
        self._faults.append(num_faults)
        while len(self._errors) > self.window:
            self._errors.popleft()
        while len(self._faults) > self.window:
            self._faults.popleft()

        mean_error = sum(self._errors) / len(self._errors)
        fault_rate = sum(self._faults) / len(self._faults)
        reasons = []
        if mean_error > self.error_threshold:
            reasons.append(
                f"exposed-latency error {mean_error:.2f} > {self.error_threshold:.2f}"
            )
        if fault_rate > self.fault_rate_threshold:
            reasons.append(
                f"fault rate {fault_rate:.2f}/iter > {self.fault_rate_threshold:.2f}"
            )
        breached = bool(reasons)
        fire = breached and self._armed and not self._suppressed
        if fire:
            self._armed = False
        elif not breached:
            self._armed = True
        return WatchdogDecision(
            replan=fire,
            error=mean_error,
            fault_rate=fault_rate,
            reason="; ".join(reasons),
        )

    def reset(self) -> None:
        """Clear the window and re-arm (call after regenerating the plan)."""
        self._errors.clear()
        self._faults.clear()
        self._armed = True

    # ------------------------------------------------------------------
    # Suppression (shadow-promotion probation, DESIGN.md §15)

    @property
    def suppressed(self) -> bool:
        return self._suppressed

    def suppress(self) -> None:
        """Stop firing while still feeding the window.

        The shadow promotion loop suppresses the watchdog during a
        probation window so the exposure trigger cannot race the
        probation monitor's own rollback decision; a breach while
        suppressed does not consume the armed edge, so a *sustained*
        breach still fires on the first observation after
        :meth:`unsuppress`.
        """
        self._suppressed = True

    def unsuppress(self) -> None:
        """Resume firing (call when probation commits or rolls back)."""
        self._suppressed = False

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """The mutable window state (thresholds live in the constructor).

        ``suppressed`` rides in the snapshot only while set, keeping
        legacy checkpoints byte-stable.
        """
        state = {
            "errors": list(self._errors),
            "faults": list(self._faults),
            "armed": self._armed,
        }
        if self._suppressed:
            state["suppressed"] = True
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot into this watchdog."""
        self._errors = deque(float(e) for e in state.get("errors", ()))
        self._faults = deque(int(f) for f in state.get("faults", ()))
        self._armed = bool(state.get("armed", True))
        self._suppressed = bool(state.get("suppressed", False))
