"""Multi-tenant preprocessing-as-a-service on one simulated fleet.

The rest of the repo plans and runs ONE training job at a time. This
package turns that machinery into a long-lived service: many tenants
submit preprocessing+training jobs against the same simulated fleet, an
admission controller prices each one with the existing
:class:`repro.core.planner.RapPlanner` against the capacity *left over*
after already-admitted tenants (the same leftover-capacity framing RAP
applies between training stages and preprocessing kernels, lifted one
level up to apply between tenants), and a weighted max-min fair-share
scheduler carves per-stage GPU capacity between them -- preempting
best-effort tenants to CPU fallback when a higher class cannot meet its
deadline otherwise.

Isolation is per-tenant end to end: every tenant gets its own
:class:`repro.telemetry.TelemetrySession` (all ``rap_*`` families carry a
``tenant`` label), its own journal and checkpoint namespace under one
service root, and its own runtime -- one tenant's faults or ladder
descent can never mutate another tenant's plan or epoch. Plans are
shared *across* tenants through a tenant-invariant index: a returning
tenant whose graph set is isomorphic to an already-planned one admits on
a renamed copy of the cached plan without touching the solver.
"""

from .carve import CarvedTrainingWorkload, carve_stage, carved_workload, weighted_max_min
from .job import (
    DEADLINE_CLASSES,
    PRIORITY_CLASSES,
    Job,
    JobState,
    TenantSpec,
    parse_tenant_specs,
)
from .metrics import ServiceMetrics
from .reuse import (
    SharedPlanIndex,
    canonicalize_plan_text,
    renamed_model,
    specialize_plan_text,
)
from .service import PreprocessingService, ServiceSummary

__all__ = [
    "CarvedTrainingWorkload",
    "carve_stage",
    "carved_workload",
    "weighted_max_min",
    "DEADLINE_CLASSES",
    "PRIORITY_CLASSES",
    "Job",
    "JobState",
    "TenantSpec",
    "parse_tenant_specs",
    "ServiceMetrics",
    "SharedPlanIndex",
    "canonicalize_plan_text",
    "renamed_model",
    "specialize_plan_text",
    "PreprocessingService",
    "ServiceSummary",
]
