"""Fair-share capacity carving between tenants on one fleet.

RAP's core observation is that training stages leave per-stage GPU
capacity (SM and DRAM headroom) on the table, and preprocessing kernels
can run in that leftover. With several tenants on one fleet the same
observation applies between tenants: each tenant may only fill a *share*
of the leftover, so from any one tenant's point of view the training
stages look proportionally busier. A stage with utilization ``u`` whose
leftover ``1 - u`` is carved down to a fraction ``s`` presents an
effective utilization of::

    u' = 1 - s * (1 - u)

which is exactly what :class:`CarvedTrainingWorkload` feeds the existing
planner and simulator -- no planner or cost-model change is needed; the
carve is just a different (busier) workload.

Shares come from :func:`weighted_max_min`: classic weighted max-min
fairness over a unit leftover pool, where weights are tenant priority
classes. A lone tenant always receives share exactly ``1.0`` and
:func:`carved_workload` then returns the *base workload object itself*,
so a single-tenant service run is bit-identical to a standalone run --
not merely numerically close (``1 - 1.0 * (1 - u)`` would round-trip
through floats).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..dlrm.stages import build_iteration_stages
from ..dlrm.training import TrainingWorkload
from ..gpusim.device import StageProfile
from ..gpusim.resources import ResourceVector

__all__ = [
    "weighted_max_min",
    "carve_stage",
    "CarvedTrainingWorkload",
    "carved_workload",
]


def weighted_max_min(
    demands: dict[str, float],
    weights: dict[str, float] | None = None,
    capacity: float = 1.0,
) -> dict[str, float]:
    """Weighted max-min fair allocation of ``capacity`` across tenants.

    ``demands[t]`` caps what tenant ``t`` can use (a tenant never receives
    more than it asks for); ``weights[t]`` scales its fair share (priority
    classes map to weights). Unclaimed capacity from capped tenants is
    redistributed among the rest by weight until everyone is either
    satisfied or the pool is exhausted. Deterministic: ties and iteration
    order follow sorted tenant names.

    A single unconstrained tenant receives exactly ``capacity`` (no float
    residue), which :func:`carved_workload` relies on for bit-identity.
    """
    if not demands:
        return {}
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    weights = weights or {}
    shares = {name: 0.0 for name in demands}
    unsatisfied = sorted(demands)
    remaining = capacity
    while unsatisfied and remaining > 1e-12:
        total_weight = sum(weights.get(name, 1.0) for name in unsatisfied)
        if total_weight <= 0:
            break
        satisfied: list[str] = []
        allocated = 0.0
        for name in unsatisfied:
            fair = remaining * weights.get(name, 1.0) / total_weight
            room = demands[name] - shares[name]
            if room <= fair:
                shares[name] += room
                allocated += room
                satisfied.append(name)
            else:
                shares[name] += fair
                allocated += fair
        remaining -= allocated
        if not satisfied:
            break  # everyone took their full fair share: pool is spent
        unsatisfied = [name for name in unsatisfied if name not in satisfied]
    return shares


def carve_stage(stage: StageProfile, share: float) -> StageProfile:
    """``stage`` as seen by a tenant holding ``share`` of its leftover."""
    util = stage.utilization
    carved = ResourceVector(
        sm=min(1.0, 1.0 - share * (1.0 - min(util.sm, 1.0))),
        dram=min(1.0, 1.0 - share * (1.0 - min(util.dram, 1.0))),
    )
    return dataclasses.replace(stage, utilization=carved)


@dataclass
class CarvedTrainingWorkload(TrainingWorkload):
    """A :class:`TrainingWorkload` whose leftover capacity is carved.

    Identical to the base workload except that every stage pipeline is
    post-processed through :func:`carve_stage`, so the planner's capacity
    estimator, the MILP fusion pass, and the cluster simulator all see
    the reduced headroom without knowing tenants exist. The carved stage
    tuples flow into :func:`repro.core.plan_cache.workload_fingerprint`,
    so plans searched at different shares never collide in the cache.
    """

    share: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {self.share}")
        super().__post_init__()

    def stages_for_gpu(self, gpu_id: int) -> list[StageProfile]:
        if gpu_id not in self._stage_cache:
            full = build_iteration_stages(
                self.config,
                self.placement,
                self.local_batch,
                gpu_id,
                spec=self.spec_for_gpu(gpu_id),
                interconnect=self.cluster.interconnect,
                calibration=self.calibration,
            )
            self._stage_cache[gpu_id] = [carve_stage(s, self.share) for s in full]
        return self._stage_cache[gpu_id]


def carved_workload(base: TrainingWorkload, share: float) -> TrainingWorkload:
    """``base`` carved down to ``share`` of its leftover capacity.

    ``share == 1.0`` returns ``base`` itself: a sole tenant must plan and
    run on the exact same object a standalone run would, so its plans,
    cache keys, and simulated latencies are bit-identical.
    """
    if not 0.0 < share <= 1.0:
        raise ValueError(f"share must be in (0, 1], got {share}")
    if share == 1.0:
        return base
    return CarvedTrainingWorkload(
        config=base.config,
        num_gpus=base.num_gpus,
        local_batch=base.local_batch,
        spec=base.spec,
        calibration=base.calibration,
        placement=base.placement,
        specs=base.specs,
        share=share,
    )
