"""Tenant specs, priority/deadline classes, and the job state machine.

A :class:`TenantSpec` is everything a tenant submits: which canned
preprocessing plan to run, batch shape, priority class (its fair-share
weight), deadline class (the training slowdown it will tolerate),
arrival time, and an optional fault-injection rate. :class:`Job` is the
service's mutable view of one admitted spec -- carved share, plan
provenance, runtime handle, accumulated report.

Tenant names double as checkpoint namespaces, journal directory names,
and metric label values, so they are validated against the checkpoint
namespace grammar up front.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dlrm.model import model_for_plan
from ..dlrm.training import TrainingWorkload
from ..preprocessing.plans import PLAN_TABLE, build_plan
from ..runtime.faults import FAULT_KINDS, KERNEL_FAILURE, FaultInjector, FaultSpec
from .reuse import renamed_model

if TYPE_CHECKING:  # pragma: no cover
    from ..preprocessing.data import CriteoSchema
    from ..preprocessing.graph import GraphSet

__all__ = [
    "PRIORITY_CLASSES",
    "DEADLINE_CLASSES",
    "TenantSpec",
    "JobState",
    "Job",
    "parse_tenant_specs",
]

#: Priority class -> weighted max-min fair-share weight. ``best_effort``
#: tenants are additionally the only preemption victims.
PRIORITY_CLASSES: dict[str, float] = {
    "prod": 4.0,
    "standard": 2.0,
    "best_effort": 1.0,
}

#: Deadline class -> maximum tolerated training slowdown, i.e. the cap on
#: ``(ideal + exposed) / ideal`` for the tenant's own job. ``none`` never
#: constrains admission.
DEADLINE_CLASSES: dict[str, float] = {
    "strict": 1.02,
    "relaxed": 1.25,
    "none": math.inf,
}

_NAME_RE = re.compile(r"[A-Za-z0-9_.-]+")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's submitted workload and service-level expectations."""

    name: str
    plan_id: int = 1
    local_batch: int = 2048
    priority: str = "standard"
    deadline: str = "none"
    arrive_iteration: int = 0
    num_iterations: int = 24
    seed: int = 2024
    fault_rate: float = 0.0
    fault_kind: str = KERNEL_FAILURE
    #: Rename graphs/columns/tables with a ``{name}.`` prefix. Off by
    #: default so a lone tenant is byte-identical to a standalone run;
    #: on, the tenant exercises the tenant-invariant plan index.
    rename: bool = False

    def __post_init__(self) -> None:
        if not _NAME_RE.fullmatch(self.name):
            raise ValueError(f"bad tenant name {self.name!r}")
        if self.plan_id not in PLAN_TABLE:
            raise ValueError(f"unknown plan id {self.plan_id}")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {sorted(PRIORITY_CLASSES)}, got {self.priority!r}"
            )
        if self.deadline not in DEADLINE_CLASSES:
            raise ValueError(
                f"deadline must be one of {sorted(DEADLINE_CLASSES)}, got {self.deadline!r}"
            )
        if self.arrive_iteration < 0:
            raise ValueError("arrive_iteration must be >= 0")
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.fault_kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.fault_kind!r}")

    @property
    def weight(self) -> float:
        return PRIORITY_CLASSES[self.priority]

    @property
    def max_slowdown(self) -> float:
        return DEADLINE_CLASSES[self.deadline]

    @property
    def preemptible(self) -> bool:
        return self.priority == "best_effort"

    def build(self, num_gpus: int) -> tuple[TrainingWorkload, "GraphSet", "CriteoSchema"]:
        """The tenant's workload, graph set, and schema on an N-GPU fleet."""
        graphs, schema = build_plan(self.plan_id, rows=self.local_batch)
        config = model_for_plan(graphs, schema)
        if self.rename:
            graphs, config = renamed_model(graphs, config, self.name)
        workload = TrainingWorkload(
            config, num_gpus=num_gpus, local_batch=self.local_batch
        )
        return workload, graphs, schema

    def injector(self) -> FaultInjector:
        if self.fault_rate <= 0.0:
            return FaultInjector(seed=self.seed)
        return FaultInjector(
            specs=(FaultSpec(kind=self.fault_kind, rate=self.fault_rate),),
            seed=self.seed,
        )


class JobState:
    """Lifecycle states of one tenant job (plain strings, not an enum)."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class Job:
    """The service's mutable bookkeeping for one submitted tenant."""

    spec: TenantSpec
    state: str = JobState.QUEUED
    share: float = 0.0
    #: How the active plan was obtained: ``cold`` (full search),
    #: ``warm-exact`` (exact-key plan cache hit), or ``warm-invariant``
    #: (renamed from an isomorphic tenant's canonical plan).
    plan_source: str = ""
    admitted_at: int | None = None
    completed_at: int | None = None
    iterations_done: int = 0
    preemptions: int = 0
    admission_us: float = 0.0
    #: Populated at admission; None while queued/rejected.
    workload: TrainingWorkload | None = None
    graphs: "GraphSet | None" = None
    schema: "CriteoSchema | None" = None
    runtime: object | None = None
    telemetry: object | None = None
    report: object | None = None
    history: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def remaining(self) -> int:
        return self.spec.num_iterations - self.iterations_done

    @property
    def active(self) -> bool:
        return self.state in (JobState.RUNNING, JobState.PREEMPTED)

    def note(self, event: str) -> None:
        self.history.append(event)

    def to_dict(self) -> dict:
        return {
            "tenant": self.name,
            "state": self.state,
            "priority": self.spec.priority,
            "deadline": self.spec.deadline,
            "share": self.share,
            "plan_source": self.plan_source,
            "admitted_at": self.admitted_at,
            "completed_at": self.completed_at,
            "iterations_done": self.iterations_done,
            "preemptions": self.preemptions,
            "admission_us": self.admission_us,
            "history": list(self.history),
        }


def parse_tenant_specs(text: str) -> list[TenantSpec]:
    """Parse the CLI's ``--tenants`` grammar into specs.

    Grammar: ``NAME[:key=val[:key=val...]][,NAME...]`` with keys ``plan``,
    ``batch``, ``class`` (priority), ``deadline``, ``arrive``, ``iters``,
    ``seed``, ``faults`` (rate), ``kind`` (fault kind), and ``rename``
    (0/1). Example::

        alice:plan=1:class=prod:deadline=strict,bob:class=best_effort:faults=0.2
    """
    specs: list[TenantSpec] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        name, options = parts[0], parts[1:]
        kwargs: dict = {}
        for option in options:
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(f"tenant option {option!r} is not key=value")
            if key == "plan":
                kwargs["plan_id"] = int(value)
            elif key == "batch":
                kwargs["local_batch"] = int(value)
            elif key == "class":
                kwargs["priority"] = value
            elif key == "deadline":
                kwargs["deadline"] = value
            elif key == "arrive":
                kwargs["arrive_iteration"] = int(value)
            elif key == "iters":
                kwargs["num_iterations"] = int(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "faults":
                kwargs["fault_rate"] = float(value)
            elif key == "kind":
                kwargs["fault_kind"] = value
            elif key == "rename":
                kwargs["rename"] = value not in ("0", "false", "no")
            else:
                raise ValueError(f"unknown tenant option {key!r}")
        specs.append(TenantSpec(name=name, **kwargs))
    if not specs:
        raise ValueError("--tenants lists no tenants")
    names = [s.name for s in specs]
    if len(names) != len(set(names)):
        raise ValueError("tenant names must be unique")
    return specs
