"""Service-level metric families (``rap_service_*``).

These live in the *service's own* registry, separate from each tenant's
:class:`~repro.telemetry.TelemetrySession` (whose families all carry
that tenant's ``tenant`` default label). Families that describe one
tenant's slice of the fleet carry an explicit ``tenant`` label here; the
rest describe the service as a whole.
"""

from __future__ import annotations

from ..telemetry.registry import DEFAULT_LATENCY_BUCKETS_US, MetricsRegistry

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """One handle over every ``rap_service_*`` instrument."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._queue_depth = self.registry.gauge(
            "rap_service_queue_depth", help="Jobs waiting for admission"
        )
        self._active = self.registry.gauge(
            "rap_service_active_tenants", help="Tenants currently holding a carve"
        )
        self._admission_latency = self.registry.histogram(
            "rap_service_admission_latency_us",
            help="Wall-clock admission latency (pricing + plan lookup)",
            buckets=DEFAULT_LATENCY_BUCKETS_US,
        )

    # ------------------------------------------------------------------

    def set_queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    def set_active_tenants(self, count: int) -> None:
        self._active.set(count)

    def observe_admission(self, outcome: str, latency_us: float) -> None:
        self.registry.counter(
            "rap_service_admissions_total",
            help="Admission decisions by outcome",
            labels={"outcome": outcome},
        ).inc()
        self._admission_latency.observe(latency_us)

    def note_plan_reuse(self, source: str) -> None:
        self.registry.counter(
            "rap_service_plan_source_total",
            help="Admitted plans by provenance (cold/warm-exact/warm-invariant)",
            labels={"source": source},
        ).inc()

    def note_preemption(self, tenant: str) -> None:
        self.registry.counter(
            "rap_service_preemptions_total",
            help="Best-effort evictions to CPU fallback by tenant",
            labels={"tenant": tenant},
        ).inc()

    def set_share(self, tenant: str, share: float) -> None:
        self.registry.gauge(
            "rap_service_carve_share",
            help="Fair-share fraction of leftover capacity by tenant",
            labels={"tenant": tenant},
        ).set(share)

    def set_carve_utilization(self, tenant: str, fraction: float) -> None:
        self.registry.gauge(
            "rap_service_carve_utilization",
            help="Fraction of the tenant's kernels running inside its carve",
            labels={"tenant": tenant},
        ).set(fraction)

    def set_tenant_exposed(self, tenant: str, exposed_us: float) -> None:
        self.registry.gauge(
            "rap_service_tenant_exposed_us",
            help="Mean exposed preprocessing latency by tenant",
            labels={"tenant": tenant},
        ).set(exposed_us)
