"""Cross-tenant plan reuse through a tenant-invariant index.

Two tenants that submit *isomorphic* preprocessing workloads -- identical
op pipelines, list lengths, batch shape, and fleet, differing only in
the names of graphs, columns, and embedding tables -- deserve one plan
search, not two. This module makes the stored plan text itself
tenant-invariant:

- :func:`canonicalize_plan_text` rewrites a tenant's serialized plan into
  canonical names (``g0/g1/...`` graphs, ``c0/c1/...`` columns) using
  :func:`repro.core.plan_cache.canonical_name_maps`, so isomorphic
  workloads produce byte-identical canonical text.
- :func:`specialize_plan_text` inverts the target tenant's own canonical
  maps to rewrite that text back into *its* names, producing exactly the
  bytes :func:`repro.core.serialization.plan_to_json` would emit for the
  renamed plan.
- :class:`SharedPlanIndex` stores canonical text in the ordinary
  :class:`~repro.core.plan_cache.PlanCache` under the salted
  :func:`~repro.core.plan_cache.invariant_plan_key`, so the invariant
  tier shares the cache's thread safety, disk persistence, and stats.

:func:`renamed_model` is the inverse convenience: it builds a renamed
(but isomorphic) copy of a graph set *and* its DLRM config with a
uniform tenant prefix. Renaming the config's tables alongside the
graphs is load-bearing: rebuilding the model from the schema instead
(``model_for_plan``) would silently assign renamed features the generic
generated-table hash size and break isomorphism.
"""

from __future__ import annotations

import dataclasses
import json

from ..core.plan_cache import PlanCache, canonical_name_maps
from ..core.serialization import plan_from_json
from ..dlrm.model import DLRMConfig
from ..dlrm.training import TrainingWorkload
from ..preprocessing.graph import DENSE_CONSUMER, FeatureGraph, GraphSet

__all__ = [
    "renamed_model",
    "canonicalize_plan_text",
    "specialize_plan_text",
    "SharedPlanIndex",
]

#: ``workload.model`` in canonical plan text; restored at specialization.
_CANONICAL_MODEL = "canonical"


def renamed_model(
    graph_set: GraphSet, config: DLRMConfig, tag: str
) -> tuple[GraphSet, DLRMConfig]:
    """An isomorphic copy of ``(graph_set, config)`` under a tenant tag.

    Graph names gain a ``{tag}.`` prefix; column names and ``table:*``
    consumers gain a ``.{tag}`` *suffix* -- the data-preparation
    estimator classifies raw columns by their ``dense``/``sparse`` name
    prefix, so a tenant prefix there would silently reclassify every
    dense column and change the plan's H2D cost. The dense consumer is
    structural and keeps its name. Embedding tables are renamed in place
    (sizes untouched), so greedy placement and every stage cost match
    the original bit for bit.
    """
    tag = tag.rstrip(".")

    def col(name: str) -> str:
        return f"{name}.{tag}"

    def consumer(name: str) -> str:
        if name == DENSE_CONSUMER:
            return name
        return f"table:{name.removeprefix('table:')}.{tag}"

    graphs = []
    for graph in graph_set:
        ops = tuple(
            dataclasses.replace(
                op,
                inputs=tuple(col(i) for i in op.inputs),
                output=col(op.output),
            )
            for op in graph.ops
        )
        graphs.append(
            FeatureGraph(
                name=f"{tag}.{graph.name}",
                ops=ops,
                consumer=consumer(graph.consumer),
                avg_list_length=graph.avg_list_length,
            )
        )
    tables = tuple(
        dataclasses.replace(t, name=consumer(t.name)) for t in config.tables
    )
    return (
        GraphSet(graphs, rows=graph_set.rows),
        dataclasses.replace(config, name=f"{tag}.{config.name}", tables=tables),
    )


# ----------------------------------------------------------------------
# Plan-text renaming


def _rename_kernel_name(name: str, column_map: dict[str, str]) -> str:
    """Map the column identity inside one serialized kernel name.

    Kernel names are ``"<op>:<output_column>"`` with an optional ``#i``
    shard suffix; fused kernels are ``"fused_<tag>_x<N>"`` and carry no
    column identity (their members do, via ``meta``).
    """
    base, sep, shard = name.partition("#")
    if base.startswith("fused_"):
        return name
    op, colon, column = base.partition(":")
    if not colon:
        return name
    renamed = column_map.get(column)
    if renamed is None:
        return name
    return f"{op}:{renamed}{sep}{shard}"


def _rename_kernel_dict(kernel: dict, column_map: dict[str, str]) -> dict:
    out = dict(kernel)
    out["name"] = _rename_kernel_name(kernel["name"], column_map)
    meta = kernel.get("meta")
    if isinstance(meta, dict):
        meta = dict(meta)
        fused = meta.get("fused")
        if isinstance(fused, list):
            meta["fused"] = [_rename_kernel_name(m, column_map) for m in fused]
        members = meta.get("member_kernels")
        if isinstance(members, list):
            meta["member_kernels"] = [
                _rename_kernel_dict(m, column_map) if isinstance(m, dict) else m
                for m in members
            ]
        out["meta"] = meta
    return out


def _rename_plan_payload(
    payload: dict,
    graph_map: dict[str, str],
    column_map: dict[str, str],
    model_name: str,
) -> dict:
    """Rename every graph/column reference in a plan payload in place.

    Dict insertion order is preserved throughout, so re-dumping with
    ``json.dumps(..., indent=2)`` reproduces ``plan_to_json``'s exact
    byte layout for the renamed plan.
    """
    out = dict(payload)
    workload = dict(out.get("workload", {}))
    workload["model"] = model_name
    out["workload"] = workload
    mapping = dict(out.get("mapping", {}))
    placements = mapping.get("placements")
    if isinstance(placements, dict):
        mapping["placements"] = {
            graph_map.get(name, name): gpus for name, gpus in placements.items()
        }
    out["mapping"] = mapping
    out["assignments_per_gpu"] = [
        {
            stage: [_rename_kernel_dict(k, column_map) for k in kernels]
            for stage, kernels in per_gpu.items()
        }
        for per_gpu in out.get("assignments_per_gpu", [])
    ]
    out["trailing_per_gpu"] = [
        [_rename_kernel_dict(k, column_map) for k in kernels]
        for kernels in out.get("trailing_per_gpu", [])
    ]
    return out


def canonicalize_plan_text(plan_text: str, graph_set: GraphSet) -> str:
    """``plan_text`` rewritten into the graph set's canonical names."""
    graph_map, column_map, _ = canonical_name_maps(graph_set)
    payload = _rename_plan_payload(
        json.loads(plan_text), graph_map, column_map, _CANONICAL_MODEL
    )
    return json.dumps(payload, indent=2)


def specialize_plan_text(
    canonical_text: str, graph_set: GraphSet, model_name: str
) -> str:
    """Canonical plan text rewritten into ``graph_set``'s own names.

    Inverts :func:`canonical_name_maps` for the *target* tenant; since
    isomorphic graph sets share one canonical form, the inverse maps of
    any isomorphic tenant line up entry for entry.
    """
    graph_map, column_map, _ = canonical_name_maps(graph_set)
    inverse_graphs = {v: k for k, v in graph_map.items()}
    inverse_columns = {v: k for k, v in column_map.items()}
    payload = _rename_plan_payload(
        json.loads(canonical_text), inverse_graphs, inverse_columns, model_name
    )
    return json.dumps(payload, indent=2)


class SharedPlanIndex:
    """Tenant-invariant plan sharing layered on the plan cache.

    Entries live in the same :class:`PlanCache` as exact-key plans (same
    memory/disk tiers, same lock), just under the salted invariant key
    and in canonical names. ``lookup`` specializes a hit into the asking
    tenant's names and validates it against the live workload shape.
    """

    def __init__(self, cache: PlanCache) -> None:
        self.cache = cache
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def store(self, invariant_key: str, plan_text: str, graph_set: GraphSet) -> None:
        self.stores += 1
        self.cache.put_text(invariant_key, canonicalize_plan_text(plan_text, graph_set))

    def lookup(
        self,
        invariant_key: str,
        workload: TrainingWorkload,
        graph_set: GraphSet,
    ) -> tuple[object, str] | None:
        """``(plan, specialized_text)`` for an isomorphic hit, else None."""
        canonical = self.cache.get_text(invariant_key)
        if canonical is None:
            self.misses += 1
            return None
        specialized = specialize_plan_text(canonical, graph_set, workload.config.name)
        try:
            plan = plan_from_json(specialized, workload, graph_set)
        except (ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return plan, specialized
