"""The long-lived preprocessing service: admission, carving, isolation.

:class:`PreprocessingService` runs many tenant jobs on one simulated
fleet. Simulated time is a global iteration tick shared by every tenant;
the service advances event to event (arrival, completion), running every
active tenant's runtime forward between events. All control decisions --
shares, admission, preemption -- are functions of the submitted specs
alone, so a service run is deterministic end to end (wall-clock admission
latency is *measured* and exported, never consulted).

Admission prices the candidate with a real :class:`RapPlanner` against
the capacity left over after already-admitted tenants (a
:func:`~repro.service.carve.carved_workload` at the candidate's
would-be fair share), in three tiers:

1. exact plan-cache hit (the tenant ran this exact workload before);
2. tenant-invariant hit (an isomorphic tenant ran it; the canonical
   plan is renamed into this tenant's namespace -- no solver call);
3. cold search (stored under both the exact and invariant keys).

If the candidate's deadline class cannot be met at its fair share,
best-effort tenants are preempted (evicted to CPU fallback) one at a
time; if it still cannot be met the candidate queues (or is rejected
when it cannot even run alone). Preempted tenants resume onto the
residual capacity when a completion frees it.

Isolation: every tenant owns its runtime, planner view, telemetry
session (``tenant``-labelled), journal, and checkpoint namespace under
one service root. Faults injected into one tenant degrade only that
tenant; shares -- and with them other tenants' plans and epochs --
change only at admission, completion, preemption, and resume events,
never on faults.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.plan_cache import PlanCache, invariant_plan_key
from ..core.planner import RapPlanner
from ..core.serialization import plan_to_json
from ..milp.branch_and_bound import BranchAndBoundSolver
from ..milp.solve_cache import SolveCache
from ..runtime.checkpoint import CheckpointManager
from ..runtime.executor import FaultTolerantRuntime
from ..runtime.journal import RunJournal
from ..runtime.report import ResilienceReport
from ..telemetry.exposition import write_prometheus
from ..telemetry.session import TelemetrySession
from .carve import carved_workload, weighted_max_min
from .job import Job, JobState, TenantSpec
from .metrics import ServiceMetrics
from .reuse import SharedPlanIndex

__all__ = ["PreprocessingService", "ServiceSummary"]


@dataclass
class ServiceSummary:
    """What one service run did, per tenant and in aggregate."""

    ticks: int = 0
    jobs: list[dict] = field(default_factory=list)
    plan_cache: dict = field(default_factory=dict)
    solve_cache: dict = field(default_factory=dict)
    reuse: dict = field(default_factory=dict)
    fleet_gpu_kernel_us: float = 0.0

    def to_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "jobs": self.jobs,
            "plan_cache": self.plan_cache,
            "solve_cache": self.solve_cache,
            "reuse": self.reuse,
            "fleet_gpu_kernel_us": self.fleet_gpu_kernel_us,
        }

    def job(self, tenant: str) -> dict:
        for entry in self.jobs:
            if entry["tenant"] == tenant:
                return entry
        raise KeyError(f"no tenant {tenant!r} in summary")

    def lines(self) -> list[str]:
        out = [f"service ticks: {self.ticks}"]
        for entry in self.jobs:
            out.append(
                f"  {entry['tenant']}: {entry['state']}"
                f" class={entry['priority']}"
                f" share={entry['share']:.3f}"
                f" plan={entry['plan_source'] or '-'}"
                f" iters={entry['iterations_done']}"
                f" preemptions={entry['preemptions']}"
                f" mean_exposed={entry['mean_exposed_us']:.1f}us"
            )
        out.append(
            "  plan cache: "
            f"{self.plan_cache.get('hits', 0)} hits, "
            f"{self.plan_cache.get('misses', 0)} misses, "
            f"{self.reuse.get('hits', 0)} invariant hits"
        )
        return out


def _plan_gpu_kernel_us(plan) -> float:
    """Per-iteration preprocessing time the plan places on GPUs."""
    total = 0.0
    for per_gpu in plan.assignments_per_gpu:
        for kernels in per_gpu.values():
            total += sum(k.duration_us for k in kernels)
    for trailing in plan.trailing_per_gpu:
        total += sum(k.duration_us for k in trailing)
    return total


class PreprocessingService:
    """Admits, carves, runs, and isolates many tenant jobs on one fleet."""

    def __init__(
        self,
        root: str | Path,
        num_gpus: int = 2,
        fair_share: bool = True,
        max_concurrent: int | None = None,
        planner_factory=None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 3,
        telemetry: bool = True,
        cache_dir: str | Path | None = None,
    ) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.num_gpus = num_gpus
        self.fair_share = fair_share
        self.max_concurrent = max_concurrent
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.telemetry_enabled = telemetry
        # One shared plan cache + MILP solver across every tenant planner:
        # both are content-addressed, so sharing is safe by construction
        # and is exactly what makes cross-tenant reuse free. ``cache_dir``
        # lets a fresh service process warm-start from a previous root.
        cache_dir = Path(cache_dir) if cache_dir is not None else self.root / "cache"
        self.plan_cache = PlanCache(cache_dir)
        self.solver = BranchAndBoundSolver(cache=SolveCache(cache_dir / "milp"))
        self.reuse = SharedPlanIndex(self.plan_cache)
        self.metrics = ServiceMetrics()
        self.plan_cache.bind_metrics(self.metrics.registry, cache="plan")
        self.solver.cache.bind_metrics(self.metrics.registry, cache="milp")
        self.journal = RunJournal(self.root / "service.jsonl")
        self._planner_factory = planner_factory or self._default_planner
        self.jobs: list[Job] = []

    def _default_planner(self, workload) -> RapPlanner:
        return RapPlanner(workload, cache=self.plan_cache, solver=self.solver)

    # ------------------------------------------------------------------
    # Submission

    def submit(self, spec: TenantSpec) -> Job:
        if any(j.name == spec.name for j in self.jobs):
            raise ValueError(f"tenant {spec.name!r} already submitted")
        job = Job(spec=spec)
        self.jobs.append(job)
        return job

    # ------------------------------------------------------------------
    # Shares

    def _running(self) -> list[Job]:
        return [j for j in self.jobs if j.state == JobState.RUNNING]

    def _shares_for(self, jobs: list[Job]) -> dict[str, float]:
        if not jobs:
            return {}
        if not self.fair_share:
            # Carving off: every tenant plans against the full leftover
            # (the paper's single-job regime, oversubscribed on purpose).
            return {j.name: 1.0 for j in jobs}
        return weighted_max_min(
            {j.name: 1.0 for j in jobs},
            {j.name: j.spec.weight for j in jobs},
        )

    # ------------------------------------------------------------------
    # Pricing

    def _ensure_built(self, job: Job) -> None:
        if job.workload is None:
            job.workload, job.graphs, job.schema = job.spec.build(self.num_gpus)

    def _price(self, job: Job, share: float):
        """Plan ``job`` at ``share`` of the leftover: cache, rename, or search."""
        self._ensure_built(job)
        workload = carved_workload(job.workload, share)
        planner = self._planner_factory(workload)
        exact_key = planner._cache_key(job.graphs)
        if self.plan_cache.get_text(exact_key) is not None:
            return planner, planner.plan(job.graphs), "warm-exact"
        invariant_key = invariant_plan_key(
            workload,
            job.graphs,
            planner.mapping_strategy,
            planner.fusion_enabled,
            planner.interleaving_enabled,
            planner.exact_fusion,
            planner.max_mapping_moves,
            planner.solver,
            predictor_fingerprint=planner._predictor_fingerprint(),
        )
        hit = self.reuse.lookup(invariant_key, workload, job.graphs)
        if hit is not None:
            plan, specialized = hit
            # Promote to this tenant's exact key so its next admission is
            # a plain exact hit; the stored bytes are exactly what a
            # plan_to_json of the renamed plan would produce.
            self.plan_cache.put_text(exact_key, specialized)
            return planner, plan, "warm-invariant"
        plan = planner.plan(job.graphs)
        text = self.plan_cache.get_text(exact_key) or plan_to_json(plan)
        self.reuse.store(invariant_key, text, job.graphs)
        return planner, plan, "cold"

    def _meets_deadline(self, job: Job, plan) -> bool:
        limit = job.spec.max_slowdown
        if limit == float("inf"):
            return True
        ideal = job.workload.ideal_iteration_us()
        if ideal <= 0:
            return True
        return (ideal + plan.predicted_exposed_us) / ideal <= limit

    # ------------------------------------------------------------------
    # Admission

    def _try_admit(self, job: Job, tick: int) -> bool:
        """Admit ``job`` if its deadline (and everyone else's) holds.

        Returns True when the job is RUNNING afterwards. May preempt
        best-effort tenants; may leave the job QUEUED; marks it REJECTED
        when it cannot meet its deadline even alone on an idle fleet.
        """
        started = time.perf_counter()
        self._ensure_built(job)
        running = self._running()
        if self.max_concurrent is not None and len(running) >= self.max_concurrent:
            self._record_admission(job, tick, "queued", started)
            return False
        trial = running + [job]
        victims: list[Job] = []
        while True:
            shares = self._shares_for(trial)
            planner, plan, source = self._price(job, shares[job.name])
            ok = self._meets_deadline(job, plan)
            if ok:
                for other in trial:
                    if other is job or other.spec.max_slowdown == float("inf"):
                        continue
                    _, other_plan, _ = self._price(other, shares[other.name])
                    if not self._meets_deadline(other, other_plan):
                        ok = False
                        break
            if ok:
                break
            candidates = [
                j for j in trial
                if j is not job and j.spec.preemptible and not job.spec.preemptible
            ]
            if not candidates:
                if len(trial) == 1:
                    job.state = JobState.REJECTED
                    self._record_admission(job, tick, "rejected", started)
                else:
                    self._record_admission(job, tick, "queued", started)
                return False
            # Most recently admitted best-effort tenant goes first.
            victim = max(candidates, key=lambda j: (j.admitted_at, j.name))
            trial.remove(victim)
            victims.append(victim)
        for victim in victims:
            self._preempt(victim, tick)
        job.state = JobState.RUNNING
        job.admitted_at = tick
        job.share = shares[job.name]
        job.plan_source = source
        job.report = ResilienceReport()
        self._attach(job, planner, plan)
        job.note(f"admitted@{tick}:{source}")
        self._record_admission(job, tick, "admitted", started)
        self.metrics.note_plan_reuse(source)
        self.journal.append(
            "admit", tenant=job.name, tick=tick, share=job.share, source=source
        )
        # The newcomer shrinks everyone else's carve.
        self._apply_shares(tick, reason="carve", shares=shares)
        return True

    def _record_admission(self, job: Job, tick: int, outcome: str, started: float) -> None:
        job.admission_us = (time.perf_counter() - started) * 1e6
        self.metrics.observe_admission(outcome, job.admission_us)
        if outcome == "queued":
            if job.state != JobState.QUEUED:
                job.state = JobState.QUEUED
            job.note(f"queued@{tick}")
            self.journal.append("queue", tenant=job.name, tick=tick)
        elif outcome == "rejected":
            job.note(f"rejected@{tick}")
            self.journal.append("reject", tenant=job.name, tick=tick)
        self.metrics.set_queue_depth(
            sum(1 for j in self.jobs if j.state == JobState.QUEUED)
        )

    def _attach(self, job: Job, planner: RapPlanner, plan) -> None:
        """Create the tenant's isolated runtime, telemetry, and journal."""
        tenant_dir = self.root / "tenants" / job.name
        tenant_dir.mkdir(parents=True, exist_ok=True)
        if self.telemetry_enabled:
            job.telemetry = TelemetrySession(
                metrics_dir=tenant_dir / "metrics", tenant=job.name
            )
        job.runtime = FaultTolerantRuntime(
            planner,
            job.graphs,
            plan=plan,
            injector=job.spec.injector(),
            journal=RunJournal(tenant_dir / "journal.jsonl"),
            telemetry=job.telemetry,
            tenant=job.name,
        )

    # ------------------------------------------------------------------
    # Preemption / resume / rebalance

    def _preempt(self, job: Job, tick: int) -> None:
        job.state = JobState.PREEMPTED
        job.share = 0.0
        job.preemptions += 1
        job.runtime.evict_to_cpu(iteration=job.iterations_done, reason="preempted")
        job.note(f"preempted@{tick}")
        self.metrics.note_preemption(job.name)
        self.metrics.set_share(job.name, 0.0)
        self.journal.append("preempt", tenant=job.name, tick=tick)

    def _resume_preempted(self, tick: int) -> None:
        for job in [j for j in self.jobs if j.state == JobState.PREEMPTED]:
            if job.remaining <= 0:
                continue
            running = self._running()
            if self.max_concurrent is not None and len(running) >= self.max_concurrent:
                continue
            trial = running + [job]
            shares = self._shares_for(trial)
            planner, plan, source = self._price(job, shares[job.name])
            protected_ok = True
            for other in running:
                if other.spec.max_slowdown == float("inf"):
                    continue
                _, other_plan, _ = self._price(other, shares[other.name])
                if not self._meets_deadline(other, other_plan):
                    protected_ok = False
                    break
            if not protected_ok:
                continue
            job.state = JobState.RUNNING
            job.share = shares[job.name]
            job.plan_source = source
            job.runtime.adopt_plan(
                planner, plan, iteration=job.iterations_done, reason="resume"
            )
            job.note(f"resumed@{tick}:{source}")
            self.journal.append(
                "resume", tenant=job.name, tick=tick, share=job.share, source=source
            )
            self._apply_shares(tick, reason="carve", shares=shares)

    def _apply_shares(
        self, tick: int, reason: str, shares: dict[str, float] | None = None
    ) -> None:
        """Re-carve every running tenant; replan only the changed ones.

        Called at admission, completion, preemption, and resume events --
        and nowhere else. One tenant's faults therefore never move
        another tenant's share, plan, or epoch.
        """
        running = self._running()
        if shares is None:
            shares = self._shares_for(running)
        for job in sorted(running, key=lambda j: j.name):
            share = shares.get(job.name, job.share)
            self.metrics.set_share(job.name, share)
            if job.runtime is not None and share == job.share:
                continue
            planner, plan, source = self._price(job, share)
            job.share = share
            job.plan_source = source
            if job.runtime is None:
                self._attach(job, planner, plan)
            else:
                job.runtime.adopt_plan(
                    planner, plan, iteration=job.iterations_done, reason=reason
                )
                self.journal.append(
                    "carve", tenant=job.name, tick=tick, share=share, source=source
                )
        self.metrics.set_active_tenants(len(running))

    # ------------------------------------------------------------------
    # The deterministic event loop

    def run(self) -> ServiceSummary:
        """Drive every submitted job to completion (or rejection)."""
        order = {id(j): i for i, j in enumerate(self.jobs)}
        pending = sorted(
            self.jobs, key=lambda j: (j.spec.arrive_iteration, order[id(j)])
        )
        tick = 0
        while True:
            # Arrivals due now (admission may preempt, so re-read state).
            due = [
                j for j in pending
                if j.state == JobState.QUEUED and j.spec.arrive_iteration <= tick
            ]
            for job in due:
                self._try_admit(job, tick)
            active = [j for j in self.jobs if j.active and j.remaining > 0]
            future = [
                j for j in pending
                if j.state == JobState.QUEUED and j.spec.arrive_iteration > tick
            ]
            if not active:
                if future:
                    tick = min(j.spec.arrive_iteration for j in future)
                    continue
                # Queued-but-never-admittable jobs cannot make progress
                # once the fleet is idle: a final attempt settles them.
                stuck = [j for j in self.jobs if j.state == JobState.QUEUED]
                progressed = any(self._try_admit(j, tick) for j in stuck)
                if not progressed:
                    break
                continue
            horizon = tick + min(j.remaining for j in active)
            if future:
                horizon = min(horizon, min(j.spec.arrive_iteration for j in future))
            delta = max(1, horizon - tick)
            for job in sorted(active, key=lambda j: order[id(j)]):
                checkpoints = None
                if self.checkpoint_every > 0:
                    checkpoints = CheckpointManager(
                        self.root / "checkpoints",
                        keep=self.keep_checkpoints,
                        namespace=job.name,
                    )
                job.runtime.run(
                    delta,
                    start_iteration=job.iterations_done,
                    report=job.report,
                    checkpoints=checkpoints,
                    checkpoint_every=self.checkpoint_every,
                )
                job.iterations_done += delta
            tick += delta
            finished = [j for j in self.jobs if j.active and j.remaining <= 0]
            for job in finished:
                self._complete(job, tick)
            if finished:
                for job in pending:
                    if job.state == JobState.QUEUED and job.spec.arrive_iteration <= tick:
                        self._try_admit(job, tick)
                self._resume_preempted(tick)
                self._apply_shares(tick, reason="carve")
        return self._summarize(tick)

    def _complete(self, job: Job, tick: int) -> None:
        job.state = JobState.COMPLETED
        job.completed_at = tick
        job.note(f"completed@{tick}")
        self.journal.append(
            "complete", tenant=job.name, tick=tick, iterations=job.iterations_done
        )
        if job.telemetry is not None:
            job.telemetry.write_artifacts(step=job.iterations_done)
            mean = self._mean_exposed(job)
            if mean is not None:
                self.metrics.set_tenant_exposed(job.name, mean)
        self.metrics.set_carve_utilization(job.name, self._carve_utilization(job))

    @staticmethod
    def _mean_exposed(job: Job) -> float | None:
        records = job.report.iterations if job.report is not None else []
        if not records:
            return None
        return sum(r.exposed_us for r in records) / len(records)

    @staticmethod
    def _carve_utilization(job: Job) -> float:
        """Fraction of the tenant's kernels that ended on the GPUs."""
        runtime = job.runtime
        if runtime is None:
            return 0.0
        on_gpu = 0
        for per_gpu in runtime.plan.assignments_per_gpu:
            for kernels in per_gpu.values():
                on_gpu += len(kernels)
        for trailing in runtime.plan.trailing_per_gpu:
            on_gpu += len(trailing)
        on_cpu = len(runtime._cpu_kernels)
        total = on_gpu + on_cpu
        return on_gpu / total if total else 0.0

    # ------------------------------------------------------------------
    # Summary / artifacts

    def _summarize(self, tick: int) -> ServiceSummary:
        summary = ServiceSummary(
            ticks=tick,
            plan_cache=self.plan_cache.stats.to_dict(),
            solve_cache=self.solver.cache.stats.to_dict(),
            reuse={
                "hits": self.reuse.hits,
                "misses": self.reuse.misses,
                "stores": self.reuse.stores,
            },
        )
        for job in self.jobs:
            entry = job.to_dict()
            mean = self._mean_exposed(job)
            entry["mean_exposed_us"] = mean if mean is not None else 0.0
            entry["plan_epoch"] = job.runtime.plan_epoch if job.runtime is not None else 0
            entry["gpu_kernel_us"] = (
                _plan_gpu_kernel_us(job.runtime.plan) if job.runtime is not None else 0.0
            )
            entry["carve_utilization"] = self._carve_utilization(job)
            summary.jobs.append(entry)
            summary.fleet_gpu_kernel_us += entry["gpu_kernel_us"]
        write_prometheus(self.root / "service_metrics.prom", self.metrics.registry)
        (self.root / "service_summary.json").write_text(
            json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return summary
