"""Telemetry subsystem: metrics, tracing, and online cost-model calibration.

Three concerns, one package:

- **Metrics** (:mod:`.registry`, :mod:`.exposition`): a process-local
  registry of counters/gauges/histograms with JSONL and Prometheus text
  exposition, written through the crash-safe :mod:`repro.ioutil` writers.
- **Tracing** (:mod:`.chrome`, :mod:`.spans`): span-based tracing on the
  simulated clock, unified with the gpusim Chrome-trace export through a
  single event-construction path, plus a strict trace validator.
- **Calibration** (:mod:`.calibration`, :mod:`.session`): the online loop
  closing RAP's cost model against observed latencies -- residual
  recording, a :class:`CalibratedPredictor` wrapper, and a drift detector
  whose firing triggers a recalibrated replan in the runtime.
"""

from .calibration import (
    CalibratedPredictor,
    CalibrationSample,
    DriftDetector,
    DriftEvent,
    LatencyDrift,
    ResidualModel,
    drift_factors_at,
)
from .chrome import (
    ChromeTraceError,
    counter_event,
    duration_event,
    instant_event,
    metadata_event,
    process_metadata_events,
    trace_document,
    trace_json,
    validate_chrome_trace,
)
from .exposition import (
    JsonlMetricsSink,
    PrometheusParseError,
    parse_prometheus_text,
    to_prometheus_text,
    write_prometheus,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from .session import TelemetrySession
from .spans import RUNTIME_PID, RUNTIME_TID, Tracer, iteration_span_events

__all__ = [
    "CalibratedPredictor",
    "CalibrationSample",
    "ChromeTraceError",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_US",
    "DriftDetector",
    "DriftEvent",
    "Gauge",
    "Histogram",
    "JsonlMetricsSink",
    "LatencyDrift",
    "MetricsRegistry",
    "PrometheusParseError",
    "ResidualModel",
    "RUNTIME_PID",
    "RUNTIME_TID",
    "TelemetrySession",
    "Tracer",
    "counter_event",
    "drift_factors_at",
    "duration_event",
    "instant_event",
    "iteration_span_events",
    "metadata_event",
    "metric_key",
    "parse_prometheus_text",
    "process_metadata_events",
    "to_prometheus_text",
    "trace_document",
    "trace_json",
    "validate_chrome_trace",
    "write_prometheus",
]
