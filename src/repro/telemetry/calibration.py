"""Online cost-model calibration: the predict -> observe -> recalibrate loop.

RAP's §5 latency predictor is trained offline, so the planner keeps
trusting stale predictions even when the runtime watches every kernel run
at a different latency (per-op-type regressions from a driver update, a
noisy neighbour, a shifted value distribution). Following the continuous
calibration argument of DLRM performance-model work, this module closes
the loop:

- the runtime records one :class:`CalibrationSample` per executed kernel:
  the cost model's prediction next to the simulator's observed latency;
- :class:`ResidualModel` maintains a per-op-type multiplicative correction
  from a sliding window of log-ratio residuals (running median by default;
  a :class:`repro.ml.gbdt.GradientBoostingRegressor` over kernel features
  when configured and enough samples exist);
- :class:`CalibratedPredictor` wraps the latency predictor (or the oracle
  fallback) and applies the correction at prediction time, so the planner,
  scheduler, and watchdog all consume recalibrated latencies;
- :class:`DriftDetector` watches the per-iteration mean absolute residual
  and raises a single edge-triggered event when it stays above threshold
  for a sustained window -- the runtime answers by injecting the
  calibrated predictor and replanning.

Everything is deterministic and serializable: corrections are pure
functions of the sample windows, and the windows ride inside checkpoints
so a resumed run replays bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..ml.gbdt import GradientBoostingRegressor

__all__ = [
    "CalibrationSample",
    "LatencyDrift",
    "drift_factors_at",
    "ResidualModel",
    "CalibratedPredictor",
    "DriftDetector",
    "DriftEvent",
]


@dataclass(frozen=True)
class CalibrationSample:
    """One (predicted, observed) standalone-latency pair for one kernel.

    ``predicted_us`` is always the *base* model's prediction (oracle or
    GBDT, never correction-adjusted) so the residual model learns the
    total multiplier against a stable reference -- recording corrected
    predictions would make the correction chase its own output.
    ``active_predicted_us`` is what the currently injected model actually
    predicted (equal to ``predicted_us`` before any calibration); the
    drift detector judges *that*, so it quiets down once the correction
    lands instead of re-firing forever.
    """

    op_type: str
    predicted_us: float
    observed_us: float
    iteration: int = -1
    stage: int = -1
    features: tuple[float, ...] = ()
    active_predicted_us: float | None = None

    @property
    def active_us(self) -> float:
        """The live model's prediction (base prediction if uncalibrated)."""
        return (
            self.active_predicted_us
            if self.active_predicted_us is not None
            else self.predicted_us
        )

    @property
    def log_ratio(self) -> float:
        """log(observed / base predicted): the multiplicative residual."""
        return math.log(max(self.observed_us, 1e-9) / max(self.predicted_us, 1e-9))

    @property
    def abs_relative_error(self) -> float:
        """Relative error of the *active* model (what drift detection sees)."""
        return abs(self.observed_us - self.active_us) / max(self.active_us, 1e-9)

    def to_dict(self) -> dict:
        return {
            "op_type": self.op_type,
            "predicted_us": self.predicted_us,
            "observed_us": self.observed_us,
            "iteration": self.iteration,
            "stage": self.stage,
            "features": list(self.features),
            "active_predicted_us": self.active_predicted_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationSample":
        active = data.get("active_predicted_us")
        return cls(
            op_type=data["op_type"],
            predicted_us=float(data["predicted_us"]),
            observed_us=float(data["observed_us"]),
            iteration=int(data.get("iteration", -1)),
            stage=int(data.get("stage", -1)),
            features=tuple(float(f) for f in data.get("features", ())),
            active_predicted_us=None if active is None else float(active),
        )


@dataclass(frozen=True)
class LatencyDrift:
    """Injected per-op-type latency drift: kernels of ``op_type`` run
    ``factor`` x their modeled latency from ``start_iteration`` onward
    (until ``end_iteration``, exclusive, when given).

    This is the environment change the calibration loop is built to
    absorb: unlike the uniform ``plan_drift`` fault (which rescales the
    whole distribution and is already handled by graph-set drift), a
    per-op-type factor is invisible to the planner's inputs -- only the
    observed-vs-predicted residual stream can reveal it.
    """

    op_type: str
    factor: float
    start_iteration: int = 0
    end_iteration: int | None = None

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("drift factor must be positive")
        if self.end_iteration is not None and self.end_iteration <= self.start_iteration:
            raise ValueError("end_iteration must be after start_iteration")

    def active_at(self, iteration: int) -> bool:
        if iteration < self.start_iteration:
            return False
        return self.end_iteration is None or iteration < self.end_iteration

    def to_dict(self) -> dict:
        return {
            "op_type": self.op_type,
            "factor": self.factor,
            "start_iteration": self.start_iteration,
            "end_iteration": self.end_iteration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyDrift":
        return cls(
            op_type=data["op_type"],
            factor=float(data["factor"]),
            start_iteration=int(data.get("start_iteration", 0)),
            end_iteration=(
                int(data["end_iteration"]) if data.get("end_iteration") is not None else None
            ),
        )


def drift_factors_at(schedule, iteration: int) -> dict[str, float]:
    """The composed per-op-type factors active at ``iteration``."""
    factors: dict[str, float] = {}
    for drift in schedule:
        if drift.active_at(iteration):
            factors[drift.op_type] = factors.get(drift.op_type, 1.0) * drift.factor
    return {op: f for op, f in factors.items() if f != 1.0}


# ----------------------------------------------------------------------
# Residual model
# ----------------------------------------------------------------------


class ResidualModel:
    """Per-op-type multiplicative correction learned from residual windows.

    ``mode="quantile"`` (default): the correction for an op type is
    ``exp(median(log(observed / predicted)))`` over its sliding window --
    robust to the occasional contended or faulted sample and exact for the
    dominant failure mode (a constant per-op-type factor).

    ``mode="gbdt"``: once an op type has at least ``min_fit_samples``
    windowed samples with feature vectors, a gradient-boosted regressor
    maps kernel features to the log-residual, capturing *shape-dependent*
    drift; op types below the threshold fall back to the quantile
    correction. Fitting is deterministic (fixed ``random_state``) and
    refit lazily whenever the window content changes.
    """

    def __init__(
        self,
        window: int = 256,
        min_samples: int = 8,
        mode: str = "quantile",
        min_fit_samples: int = 64,
        clip: float = 32.0,
    ) -> None:
        if mode not in ("quantile", "gbdt"):
            raise ValueError(f"mode must be 'quantile' or 'gbdt', got {mode!r}")
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if clip <= 1.0:
            raise ValueError("clip must exceed 1.0")
        self.window = window
        self.min_samples = min_samples
        self.mode = mode
        self.min_fit_samples = min_fit_samples
        self.clip = clip
        self._samples: dict[str, deque[CalibrationSample]] = {}
        self._gbdt: dict[str, GradientBoostingRegressor] = {}
        self._gbdt_stale: set[str] = set()
        self.total_samples = 0

    # ------------------------------------------------------------------

    def record(self, sample: CalibrationSample) -> None:
        window = self._samples.setdefault(
            sample.op_type, deque(maxlen=self.window)
        )
        window.append(sample)
        self._gbdt_stale.add(sample.op_type)
        self.total_samples += 1

    def op_types(self) -> list[str]:
        return sorted(self._samples)

    def samples_for(self, op_type: str) -> list[CalibrationSample]:
        return list(self._samples.get(op_type, ()))

    # ------------------------------------------------------------------

    def correction(self, op_type: str) -> float:
        """The multiplicative correction for one op type (1.0 = trust base)."""
        window = self._samples.get(op_type)
        if window is None or len(window) < self.min_samples:
            return 1.0
        log_ratios = sorted(s.log_ratio for s in window)
        n = len(log_ratios)
        mid = n // 2
        median = log_ratios[mid] if n % 2 else 0.5 * (log_ratios[mid - 1] + log_ratios[mid])
        return float(min(self.clip, max(1.0 / self.clip, math.exp(median))))

    def corrections(self) -> dict[str, float]:
        return {op: self.correction(op) for op in self.op_types()}

    def correct(self, op_type: str, predicted_us: float, features=()) -> float:
        """Apply the learned residual to one base prediction."""
        if self.mode == "gbdt":
            model = self._gbdt_model(op_type)
            if model is not None and features:
                log_corr = float(model.predict(np.asarray([features], dtype=float))[0])
                bounded = min(math.log(self.clip), max(-math.log(self.clip), log_corr))
                return predicted_us * math.exp(bounded)
        return predicted_us * self.correction(op_type)

    def _gbdt_model(self, op_type: str) -> GradientBoostingRegressor | None:
        window = self._samples.get(op_type)
        if window is None or len(window) < self.min_fit_samples:
            return None
        rows = [s for s in window if s.features]
        if len(rows) < self.min_fit_samples:
            return None
        if op_type in self._gbdt_stale or op_type not in self._gbdt:
            x = np.asarray([s.features for s in rows], dtype=float)
            y = np.asarray([s.log_ratio for s in rows], dtype=float)
            model = GradientBoostingRegressor(
                n_estimators=40, max_depth=3, learning_rate=0.2, random_state=0
            )
            model.fit(x, y)
            self._gbdt[op_type] = model
            self._gbdt_stale.discard(op_type)
        return self._gbdt[op_type]

    # ------------------------------------------------------------------

    def mean_absolute_percentage_error(self, corrected: bool = False) -> float:
        """MAPE of the base (or corrected) predictions over all windows."""
        errors: list[float] = []
        for op_type, window in self._samples.items():
            for s in window:
                pred = (
                    self.correct(op_type, s.predicted_us, s.features)
                    if corrected
                    else s.predicted_us
                )
                errors.append(abs(s.observed_us - pred) / max(s.observed_us, 1e-9))
        return float(sum(errors) / len(errors)) if errors else 0.0

    def fingerprint(self) -> str:
        """Content hash of the current corrections (plan-cache key input)."""
        payload = json.dumps(
            {op: round(c, 12) for op, c in self.corrections().items()}, sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "window": self.window,
            "min_samples": self.min_samples,
            "mode": self.mode,
            "min_fit_samples": self.min_fit_samples,
            "clip": self.clip,
            "total_samples": self.total_samples,
            "samples": {
                op: [s.to_dict() for s in window]
                for op, window in sorted(self._samples.items())
            },
        }

    def load_state(self, state: dict) -> None:
        self.window = int(state.get("window", self.window))
        self.min_samples = int(state.get("min_samples", self.min_samples))
        self.mode = state.get("mode", self.mode)
        self.min_fit_samples = int(state.get("min_fit_samples", self.min_fit_samples))
        self.clip = float(state.get("clip", self.clip))
        self.total_samples = int(state.get("total_samples", 0))
        self._samples = {
            op: deque(
                (CalibrationSample.from_dict(s) for s in samples), maxlen=self.window
            )
            for op, samples in state.get("samples", {}).items()
        }
        self._gbdt = {}
        self._gbdt_stale = set(self._samples)


# ----------------------------------------------------------------------
# Calibrated predictor
# ----------------------------------------------------------------------


class CalibratedPredictor:
    """The latency predictor with the online residual correction applied.

    Wraps either a fitted :class:`repro.core.PreprocessingLatencyPredictor`
    or the oracle fallback (``base=None``: the kernel's own modeled
    latency, mirroring :meth:`repro.core.CoRunningCostModel.kernel_latency`).
    Duck-types the predictor protocol (``predict_kernel`` /
    ``predict_total`` / ``is_fitted``) so it drops into the cost model,
    the scheduler, and the mapper unchanged.
    """

    def __init__(self, base, residual: ResidualModel) -> None:
        self.base = base
        self.residual = residual

    @property
    def is_fitted(self) -> bool:
        # Corrections apply even in oracle mode; the wrapper is "fitted"
        # as soon as it exists so the cost model routes through it.
        return True

    def base_prediction(self, kernel) -> float:
        if self.base is not None and getattr(self.base, "is_fitted", False):
            return self.base.predict_kernel(kernel)
        return kernel.duration_us

    def predict_kernel(self, kernel) -> float:
        from ..core.latency_predictor import kernel_features

        return self.residual.correct(
            kernel.tag, self.base_prediction(kernel), kernel_features(kernel)
        )

    def predict_total(self, kernels) -> float:
        return sum(self.predict_kernel(k) for k in kernels)

    def fingerprint(self) -> str:
        """Cache-key contribution: base identity plus current corrections."""
        base_token = "oracle"
        if self.base is not None:
            base_fp = getattr(self.base, "fingerprint", None)
            base_token = base_fp() if callable(base_fp) else repr(type(self.base).__name__)
        return f"calibrated:{base_token}:{self.residual.fingerprint()}"


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DriftEvent:
    """One edge-triggered detection of sustained cost-model drift."""

    iteration: int
    mean_residual: float
    worst_op_type: str
    worst_residual: float

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "mean_residual": self.mean_residual,
            "worst_op_type": self.worst_op_type,
            "worst_residual": self.worst_residual,
        }


@dataclass
class DriftDetector:
    """Sustained-|residual| detector over per-iteration aggregates.

    Each iteration contributes the *worst per-op-type* mean absolute
    relative residual of its kernel samples -- per-op, not the all-sample
    mean, because one drifted op among many healthy ones would otherwise
    be diluted below any usable threshold. When every entry of the last
    ``window`` iterations exceeds ``threshold`` -- a sustained breach, not
    a spike -- the detector fires once (edge-triggered) and stays quiet
    until the signal drops below threshold and re-arms. The runtime treats
    a firing as a watchdog event: recalibrate, then replan.
    """

    threshold: float = 0.25
    window: int = 3
    _history: deque = field(default_factory=deque, repr=False)
    _armed: bool = field(default=True, repr=False)
    _per_op_last: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def observe_iteration(
        self, iteration: int, samples: list[CalibrationSample]
    ) -> DriftEvent | None:
        """Feed one iteration's samples; maybe raise the drift event."""
        if not samples:
            return None
        per_op: dict[str, list[float]] = {}
        for s in samples:
            per_op.setdefault(s.op_type, []).append(s.abs_relative_error)
        self._per_op_last = {
            op: sum(errs) / len(errs) for op, errs in per_op.items()
        }
        signal = max(self._per_op_last.values())
        self._history.append(signal)
        while len(self._history) > self.window:
            self._history.popleft()

        sustained = (
            len(self._history) == self.window
            and min(self._history) > self.threshold
        )
        if not sustained:
            if signal <= self.threshold:
                self._armed = True
            return None
        if not self._armed:
            return None
        self._armed = False
        worst_op, worst = max(self._per_op_last.items(), key=lambda kv: kv[1])
        mean_residual = sum(s.abs_relative_error for s in samples) / len(samples)
        return DriftEvent(
            iteration=iteration,
            mean_residual=mean_residual,
            worst_op_type=worst_op,
            worst_residual=worst,
        )

    def reset(self) -> None:
        self._history.clear()
        self._per_op_last = {}
        self._armed = True

    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "history": list(self._history),
            "armed": self._armed,
            "per_op_last": dict(self._per_op_last),
        }

    def load_state(self, state: dict) -> None:
        self._history = deque(float(v) for v in state.get("history", ()))
        self._armed = bool(state.get("armed", True))
        self._per_op_last = {
            str(k): float(v) for k, v in state.get("per_op_last", {}).items()
        }
