"""Chrome trace-event construction: the single event-emission path.

Both the simulator's iteration export (:mod:`repro.gpusim.export`) and the
runtime span tracer (:mod:`repro.telemetry.spans`) emit the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto. Before this module
each built its event dicts by hand; every event in the repository now
funnels through these constructors, so the format invariants strict
viewers care about (metadata events carrying the reserved ``__metadata``
category and an explicit ``tid``, complete ``X`` events, a top-level
``traceEvents`` array) are enforced in exactly one place.

:func:`validate_chrome_trace` is the strict schema check used by CI and
the round-trip tests.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "duration_event",
    "counter_event",
    "instant_event",
    "metadata_event",
    "process_metadata_events",
    "trace_document",
    "trace_json",
    "validate_chrome_trace",
    "ChromeTraceError",
]

#: The reserved category of metadata (``ph: M``) events.
METADATA_CATEGORY = "__metadata"

_REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ts", "dur", "pid", "tid"),
    "M": ("name", "cat", "ph", "pid", "tid"),
    "C": ("name", "ts", "pid"),
    "i": ("name", "ts", "pid", "tid"),
}


def duration_event(
    name: str,
    cat: str,
    ts: float,
    dur: float,
    pid: int,
    tid: int,
    args: Mapping[str, Any] | None = None,
) -> dict:
    """A complete (``ph: X``) duration event."""
    if dur < 0:
        raise ValueError(f"duration event {name!r} has negative dur {dur}")
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": float(ts),
        "dur": float(dur),
        "pid": int(pid),
        "tid": int(tid),
    }
    if args:
        event["args"] = dict(args)
    return event


def counter_event(
    name: str, ts: float, pid: int, values: Mapping[str, float], cat: str = "utilization"
) -> dict:
    """A counter (``ph: C``) event; ``values`` become the stacked series."""
    return {
        "name": name,
        "cat": cat,
        "ph": "C",
        "ts": float(ts),
        "pid": int(pid),
        "args": {k: float(v) for k, v in values.items()},
    }


def instant_event(
    name: str,
    cat: str,
    ts: float,
    pid: int,
    tid: int,
    args: Mapping[str, Any] | None = None,
    scope: str = "t",
) -> dict:
    """An instant (``ph: i``) event marking a point in time (e.g. a replan)."""
    event = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "ts": float(ts),
        "pid": int(pid),
        "tid": int(tid),
        "s": scope,
    }
    if args:
        event["args"] = dict(args)
    return event


def metadata_event(name: str, pid: int, tid: int, args: Mapping[str, Any]) -> dict:
    """A metadata (``ph: M``) event with the reserved category and a tid."""
    return {
        "name": name,
        "cat": METADATA_CATEGORY,
        "ph": "M",
        "pid": int(pid),
        "tid": int(tid),
        "ts": 0,
        "args": dict(args),
    }


def process_metadata_events(
    pid: int,
    process_name: str,
    threads: Mapping[int, str] | None = None,
    sort_index: int | None = None,
) -> list[dict]:
    """The standard metadata block naming one process and its threads.

    ``process_sort_index`` pins the process row (defaults to ``pid``) so
    strict viewers order rows deterministically regardless of event order.
    """
    events = [
        metadata_event("process_name", pid, 0, {"name": process_name}),
        metadata_event(
            "process_sort_index", pid, 0,
            {"sort_index": pid if sort_index is None else sort_index},
        ),
    ]
    for tid, thread_name in sorted((threads or {}).items()):
        events.append(metadata_event("thread_name", pid, tid, {"name": thread_name}))
    return events


def trace_document(events: list[dict]) -> dict:
    """The top-level Chrome trace JSON object."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def trace_json(events: list[dict], indent: int | None = None) -> str:
    return json.dumps(trace_document(events), indent=indent)


# ----------------------------------------------------------------------
# Strict validation
# ----------------------------------------------------------------------


class ChromeTraceError(ValueError):
    """A trace document violates the Trace Event Format contract."""


def validate_chrome_trace(document: dict | str) -> list[dict]:
    """Strictly validate a Chrome trace document; returns its events.

    Checks the invariants Perfetto's importer relies on: a ``traceEvents``
    array of objects, every event carrying ``ph`` plus the fields its
    phase requires, non-negative durations, metadata events using the
    reserved ``__metadata`` category, and numeric timestamps.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ChromeTraceError(f"trace is not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise ChromeTraceError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ChromeTraceError("trace document must carry a traceEvents array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ChromeTraceError(f"event {i} is not an object")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            raise ChromeTraceError(f"event {i} is missing its ph phase")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            raise ChromeTraceError(f"event {i} has unsupported phase {phase!r}")
        for field in required:
            if field == "ph":
                continue
            if field not in event:
                raise ChromeTraceError(f"{phase!r} event {i} is missing field {field!r}")
        for field in ("ts", "dur"):
            if field in event and not isinstance(event[field], (int, float)):
                raise ChromeTraceError(f"event {i} field {field!r} must be numeric")
        if event.get("dur", 0) < 0:
            raise ChromeTraceError(f"event {i} has negative duration")
        if phase == "M" and event.get("cat") != METADATA_CATEGORY:
            raise ChromeTraceError(
                f"metadata event {i} must use the reserved {METADATA_CATEGORY!r} category"
            )
        if phase in ("X", "i") and not isinstance(event.get("name"), str):
            raise ChromeTraceError(f"event {i} name must be a string")
    return events
