"""Exposition sinks: Prometheus text format and JSONL snapshots.

A registry snapshot leaves the process two ways:

- :func:`to_prometheus_text` / :func:`write_prometheus` -- the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket``/``_sum``/``_count`` histogram series), written atomically so
  a scraper pointed at the file never reads a torn exposition;
- :class:`JsonlMetricsSink` -- an append-only sequence of registry
  snapshots (one JSON object per flush), republished atomically as a whole
  file so the artifact is always parseable end to end.

:func:`parse_prometheus_text` is the strict counterpart used by CI and the
round-trip tests: it rejects undeclared metrics, out-of-order bucket
bounds, missing ``+Inf`` buckets, and ``_count`` drifting from the
terminal bucket -- the failure modes that silently corrupt dashboards.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Mapping

from ..ioutil import atomic_write_text
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "to_prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
    "PrometheusParseError",
    "JsonlMetricsSink",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the whole registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, cls, help_text, children in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        if cls is Counter:
            type_name = "counter"
        elif cls is Gauge:
            type_name = "gauge"
        else:
            type_name = "histogram"
        lines.append(f"# TYPE {name} {type_name}")
        for metric in children:
            if cls is Histogram:
                for le, count in metric.cumulative_counts():
                    labels = dict(metric.labels)
                    labels["le"] = "+Inf" if math.isinf(le) else _format_value(le)
                    lines.append(f"{name}_bucket{_format_labels(labels)} {count}")
                lines.append(
                    f"{name}_sum{_format_labels(metric.labels)} {_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(metric.labels)} {_format_value(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> None:
    """Atomically publish the registry as a Prometheus text file."""
    atomic_write_text(path, to_prometheus_text(registry))


# ----------------------------------------------------------------------
# Strict parsing (CI validation and round-trip tests)
# ----------------------------------------------------------------------


class PrometheusParseError(ValueError):
    """The exposition text violates the format (with the offending line)."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(f"{prefix}{message}")
        self.line_number = line_number


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PrometheusParseError(f"invalid sample value {raw!r}", line_no) from None


def _unescape_label_value(raw: str, line_no: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(raw):
            raise PrometheusParseError("dangling escape in label value", line_no)
        nxt = raw[i + 1]
        if nxt == "n":
            out.append("\n")
        elif nxt in ('"', "\\"):
            out.append(nxt)
        else:
            raise PrometheusParseError(f"invalid escape \\{nxt} in label value", line_no)
        i += 2
    return "".join(out)


def _strip_suffix(name: str, types: Mapping[str, str]) -> tuple[str, str]:
    """Map a sample name to its (family, role) under the declared types."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            family = name[: -len(suffix)]
            if types[family] == "histogram":
                return family, suffix[1:]
    return name, "value"


def parse_prometheus_text(text: str) -> dict:
    """Strictly parse Prometheus exposition text into a family dict.

    Returns ``{family: {"type": ..., "help": ..., "samples": [...]}}`` where
    each sample is ``(labels_dict, value)`` (histogram samples carry their
    role in the labels under the reserved key ``__role__``). Raises
    :class:`PrometheusParseError` on any structural violation:

    - samples for a family with no preceding ``# TYPE`` declaration;
    - duplicate ``# TYPE`` declarations or duplicate samples;
    - histogram bucket bounds that fail to increase, a missing ``+Inf``
      bucket, non-monotone cumulative counts, or ``_count`` different from
      the ``+Inf`` bucket's value.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, str, float]]] = {}
    seen: set[tuple] = set()

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            if not parts or not parts[0]:
                raise PrometheusParseError("malformed HELP line", line_no)
            helps[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2:
                raise PrometheusParseError("malformed TYPE line", line_no)
            name, type_name = parts
            if type_name not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PrometheusParseError(f"unknown metric type {type_name!r}", line_no)
            if name in types:
                raise PrometheusParseError(f"duplicate TYPE for {name!r}", line_no)
            types[name] = type_name
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"malformed sample line {line!r}", line_no)
        name = match.group("name")
        labels: dict[str, str] = {}
        label_body = match.group("labels")
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_body):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2), line_no)
                consumed += 1
            declared = [p for p in label_body.split(",") if p.strip()]
            if consumed != len(declared):
                raise PrometheusParseError(f"malformed label set {{{label_body}}}", line_no)
        value = _parse_value(match.group("value"), line_no)
        family, role = _strip_suffix(name, types)
        if family not in types:
            raise PrometheusParseError(
                f"sample for {family!r} has no preceding TYPE declaration", line_no
            )
        if types[family] == "histogram" and role == "value":
            raise PrometheusParseError(
                f"histogram {family!r} sample must be _bucket, _sum, or _count", line_no
            )
        identity = (name, tuple(sorted(labels.items())))
        if identity in seen:
            raise PrometheusParseError(f"duplicate sample {name}{labels}", line_no)
        seen.add(identity)
        samples.setdefault(family, []).append((labels, role, value))

    out: dict[str, dict] = {}
    for family, type_name in types.items():
        entries = samples.get(family, [])
        if type_name == "histogram":
            _validate_histogram(family, entries)
        out[family] = {
            "type": type_name,
            "help": helps.get(family, ""),
            "samples": [
                ({**labels, "__role__": role} if role != "value" else dict(labels), value)
                for labels, role, value in entries
            ],
        }
    return out


def _validate_histogram(family: str, entries: list[tuple[dict, str, float]]) -> None:
    by_series: dict[tuple, dict] = {}
    for labels, role, value in entries:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        series = by_series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if role == "bucket":
            if "le" not in labels:
                raise PrometheusParseError(f"{family}_bucket sample missing le label")
            le = _parse_value(labels["le"], 0) if labels["le"] != "+Inf" else math.inf
            series["buckets"].append((le, value))
        elif role == "sum":
            series["sum"] = value
        elif role == "count":
            series["count"] = value
    for key, series in by_series.items():
        buckets = series["buckets"]
        if not buckets:
            raise PrometheusParseError(f"histogram {family!r} series {key} has no buckets")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise PrometheusParseError(
                f"histogram {family!r} bucket bounds must strictly increase, got {bounds}"
            )
        if not math.isinf(bounds[-1]):
            raise PrometheusParseError(f"histogram {family!r} is missing the +Inf bucket")
        counts = [c for _, c in buckets]
        if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
            raise PrometheusParseError(
                f"histogram {family!r} cumulative bucket counts must be non-decreasing"
            )
        if series["count"] is None or series["sum"] is None:
            raise PrometheusParseError(f"histogram {family!r} is missing _sum or _count")
        if series["count"] != counts[-1]:
            raise PrometheusParseError(
                f"histogram {family!r}: _count {series['count']} != +Inf bucket {counts[-1]}"
            )


# ----------------------------------------------------------------------
# JSONL snapshots
# ----------------------------------------------------------------------


class JsonlMetricsSink:
    """Accumulates registry snapshots and publishes them as one JSONL file.

    Each :meth:`flush` appends one line (``{"step": ..., "metrics": ...}``)
    to the in-memory log and atomically republishes the whole file, so the
    on-disk artifact is always a complete, parseable JSONL document even if
    the process dies between flushes.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lines: list[str] = []

    def flush(self, registry: MetricsRegistry, step: int | None = None) -> None:
        record = {"step": step, "metrics": registry.snapshot()}
        self._lines.append(json.dumps(record, sort_keys=True))
        atomic_write_text(self.path, "\n".join(self._lines) + "\n")

    def __len__(self) -> int:
        return len(self._lines)

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All snapshot records in the file, oldest first."""
        target = Path(path)
        if not target.exists():
            return []
        records = []
        for line in target.read_text().splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records
