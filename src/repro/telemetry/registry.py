"""Process-local metrics registry: counters, gauges, histograms.

The runtime, the planner caches, and the CLI all need the same three
primitives a production training service exports: monotonically increasing
counters (iterations, faults, cache hits), point-in-time gauges (plan
epoch, per-op-type calibration corrections), and fixed-bucket histograms
(iteration latency, exposed latency). This module provides them with the
usual registry discipline -- one instance per (name, labels) pair, type
conflicts rejected at registration -- without any dependency on an
external metrics client.

Everything is synchronous and in-process: metrics are read either by the
CLI summary at exit or by the exposition sinks
(:mod:`repro.telemetry.exposition`), which snapshot the registry and write
artifacts through the crash-safe :mod:`repro.ioutil` writers.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
    "metric_key",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed bucket schema for simulated-latency histograms (microseconds).
#: Chosen to straddle everything from a single kernel launch (~5 us) to a
#: multi-second degraded iteration; the +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    10.0,
    50.0,
    100.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
)


def metric_key(name: str, labels: Mapping[str, str] | None) -> tuple:
    """The registry's identity for one child: name plus sorted label pairs."""
    if labels is None:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _validate(name: str, labels: Mapping[str, str] | None) -> None:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    for label in labels or ():
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r} on metric {name!r}")


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative exposition semantics.

    ``buckets`` are the finite upper bounds in strictly increasing order;
    the implicit ``+Inf`` bucket catches everything else. Observations
    update per-bucket counts, the running sum, and the total count --
    exactly the triple the Prometheus text format exposes.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out


class MetricsRegistry:
    """Get-or-create store of metric instruments, keyed by (name, labels).

    Two callers asking for the same counter receive the same object; asking
    for an existing name with a different instrument type (or different
    histogram buckets) is a programming error and raises immediately --
    silent double registration is how dashboards end up lying.
    """

    def __init__(self, default_labels: Mapping[str, str] | None = None) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, object] = {}
        self._types: dict[str, type] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        # Labels stamped onto every instrument this registry creates. A
        # per-tenant TelemetrySession uses this to put ``tenant=<name>`` on
        # all rap_* families without the runtime knowing about tenancy.
        self.default_labels = {
            str(k): str(v) for k, v in (default_labels or {}).items()
        }
        _validate("rap_default_labels_probe", self.default_labels)

    # ------------------------------------------------------------------

    def _get_or_create(self, cls, name, labels, help_text, **kwargs):
        if self.default_labels:
            merged = dict(self.default_labels)
            merged.update(labels or {})
            labels = merged
        _validate(name, labels)
        key = metric_key(name, labels)
        with self._lock:
            registered = self._types.get(name)
            if registered is not None and registered is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {registered.__name__}, "
                    f"cannot re-register as {cls.__name__}"
                )
            existing = self._metrics.get(key)
            if existing is not None:
                if cls is Histogram and kwargs.get("buckets") is not None:
                    if tuple(kwargs["buckets"]) != existing.buckets:
                        raise ValueError(
                            f"histogram {name!r} already registered with buckets "
                            f"{existing.buckets}"
                        )
                return existing
            if cls is Histogram:
                declared = self._buckets.get(name)
                buckets = kwargs.get("buckets")
                if buckets is None:
                    buckets = declared if declared is not None else DEFAULT_LATENCY_BUCKETS_US
                elif declared is not None and tuple(buckets) != declared:
                    raise ValueError(
                        f"histogram {name!r} already registered with buckets {declared}"
                    )
                metric = Histogram(name, buckets=buckets, labels=labels)
                self._buckets[name] = metric.buckets
            else:
                metric = cls(name, labels=labels)
            self._metrics[key] = metric
            self._types[name] = cls
            if help_text and name not in self._help:
                self._help[name] = help_text
            return metric

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(list(self._metrics.values()))

    def families(self) -> list[tuple[str, type, str, list]]:
        """Metrics grouped by name: ``(name, type, help, children)``.

        Children are ordered by their label sets for deterministic
        exposition output.
        """
        by_name: dict[str, list] = {}
        with self._lock:
            for (name, _), metric in sorted(self._metrics.items()):
                by_name.setdefault(name, []).append(metric)
            return [
                (name, self._types[name], self._help.get(name, ""), children)
                for name, children in sorted(by_name.items())
            ]

    def type_of(self, name: str) -> type | None:
        return self._types.get(name)

    def snapshot(self) -> dict:
        """A plain-dict view of every metric, suitable for JSON encoding."""
        out: dict[str, list[dict]] = {}
        for name, cls, help_text, children in self.families():
            series = []
            for metric in children:
                entry: dict = {"labels": dict(metric.labels)}
                if cls is Histogram:
                    entry["sum"] = metric.sum
                    entry["count"] = metric.count
                    entry["buckets"] = [
                        {"le": "+Inf" if math.isinf(le) else le, "count": c}
                        for le, c in metric.cumulative_counts()
                    ]
                else:
                    entry["value"] = metric.value
                series.append(entry)
            out[name] = {"type": cls.__name__.lower(), "help": help_text, "series": series}
        return out
