"""TelemetrySession: one handle bundling metrics, tracing, and calibration.

The runtime (and the CLI behind it) talks to telemetry through this single
object: it owns the :class:`repro.telemetry.registry.MetricsRegistry`, the
span :class:`repro.telemetry.spans.Tracer`, the
:class:`repro.telemetry.calibration.ResidualModel`, and the
:class:`repro.telemetry.calibration.DriftDetector`, and knows how to
publish all of them as crash-safe artifacts (``metrics.prom``,
``metrics.jsonl``, ``trace.json``) in a metrics directory.

When telemetry is disabled the runtime simply carries ``telemetry=None``
and never touches any of this -- the zero-cost-when-off contract is "no
object, no calls", not a null-object that still burns cycles.
"""

from __future__ import annotations

from pathlib import Path

from .calibration import (
    CalibratedPredictor,
    CalibrationSample,
    DriftDetector,
    DriftEvent,
    ResidualModel,
)
from .exposition import JsonlMetricsSink, to_prometheus_text, write_prometheus
from .registry import DEFAULT_LATENCY_BUCKETS_US, MetricsRegistry
from .spans import Tracer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Aggregates the telemetry subsystem behind one runtime-facing API."""

    def __init__(
        self,
        metrics_dir: str | Path | None = None,
        residual: ResidualModel | None = None,
        drift_detector: DriftDetector | None = None,
        tenant: str | None = None,
    ) -> None:
        self.metrics_dir = Path(metrics_dir) if metrics_dir is not None else None
        self.tenant = tenant
        self.registry = MetricsRegistry(
            default_labels={"tenant": tenant} if tenant is not None else None
        )
        self.tracer = Tracer()
        self.residual = residual if residual is not None else ResidualModel()
        self.drift_detector = (
            drift_detector if drift_detector is not None else DriftDetector()
        )
        self.drift_events: list[DriftEvent] = []
        self._iteration_samples: list[CalibrationSample] = []
        self._jsonl: JsonlMetricsSink | None = (
            JsonlMetricsSink(self.metrics_dir / "metrics.jsonl")
            if self.metrics_dir is not None
            else None
        )
        # Instruments shared across the run; per-label children are created
        # lazily at first observation.
        self._iteration_hist = self.registry.histogram(
            "rap_iteration_latency_us",
            help="Simulated end-to-end iteration latency",
            buckets=DEFAULT_LATENCY_BUCKETS_US,
        )
        self._exposed_hist = self.registry.histogram(
            "rap_exposed_preprocessing_us",
            help="Simulated exposed (non-overlapped) preprocessing latency",
            buckets=DEFAULT_LATENCY_BUCKETS_US,
        )
        self._iterations = self.registry.counter(
            "rap_iterations_total", help="Iterations executed"
        )
        self._drift_counter = self.registry.counter(
            "rap_drift_events_total", help="Drift detector firings"
        )

    # ------------------------------------------------------------------
    # Sample recording

    def record_kernel_sample(self, sample: CalibrationSample) -> None:
        """Record one (predicted, observed) kernel latency pair."""
        self.residual.record(sample)
        self._iteration_samples.append(sample)
        self.registry.histogram(
            "rap_kernel_observed_us",
            help="Observed standalone kernel latency by op type",
            labels={"op": sample.op_type},
        ).observe(sample.observed_us)
        self.registry.counter(
            "rap_calibration_samples_total",
            help="Calibration samples recorded by op type",
            labels={"op": sample.op_type},
        ).inc()

    def record_iteration(
        self,
        iteration: int,
        iteration_us: float,
        exposed_us: float,
        per_gpu_results=(),
        **span_args,
    ) -> None:
        """Record one iteration's aggregates and its trace spans."""
        self._iterations.inc()
        self._iteration_hist.observe(iteration_us)
        self._exposed_hist.observe(exposed_us)
        self.tracer.record_iteration(
            iteration,
            iteration_us,
            per_gpu_results=per_gpu_results,
            exposed_us=exposed_us,
            **span_args,
        )

    def check_drift(self, iteration: int) -> DriftEvent | None:
        """Run the drift detector over this iteration's samples and reset."""
        samples, self._iteration_samples = self._iteration_samples, []
        event = self.drift_detector.observe_iteration(iteration, samples)
        if event is not None:
            self.drift_events.append(event)
            self._drift_counter.inc()
            self.tracer.instant(
                f"drift detected ({event.worst_op_type})",
                "calibration",
                mean_residual=event.mean_residual,
                worst_op=event.worst_op_type,
                worst_residual=event.worst_residual,
            )
        return event

    def note_replan(self, iteration: int, reason: str, plan_epoch: int) -> None:
        self.registry.counter(
            "rap_replans_total", help="Replans by trigger", labels={"reason": reason}
        ).inc()
        self.registry.gauge("rap_plan_epoch", help="Current plan epoch").set(plan_epoch)
        self.tracer.instant(f"replan ({reason})", "runtime", plan_epoch=plan_epoch)

    def note_shadow_candidate(self, predicted_win: float, promoted: bool) -> None:
        """Record one shadow candidate evaluation (DESIGN.md §15)."""
        self.registry.counter(
            "rap_shadow_candidates_total",
            help="Shadow candidates evaluated against the replay window",
        ).inc()
        self.registry.gauge(
            "rap_shadow_predicted_win",
            help="Predicted exposed-latency win of the latest shadow candidate",
        ).set(predicted_win)
        if promoted:
            self.registry.counter(
                "rap_shadow_promotions_total",
                help="Shadow candidates promoted to live plan",
            ).inc()
            self.tracer.instant(
                "shadow promotion", "shadow", predicted_win=predicted_win
            )

    def note_shadow_probation(
        self, outcome: str, realized_win: float | None, predicted_win: float | None
    ) -> None:
        """Record how one probation window ended (commit/rollback/abort)."""
        self.registry.counter(
            "rap_shadow_probation_outcomes_total",
            help="Probation outcomes by kind",
            labels={"outcome": outcome},
        ).inc()
        if outcome == "rolled_back":
            self.registry.counter(
                "rap_shadow_rollbacks_total",
                help="Promotions rolled back to their anchor",
            ).inc()
        if realized_win is not None:
            self.registry.gauge(
                "rap_shadow_realized_win",
                help="Realized iteration-latency win of the latest probation",
            ).set(realized_win)
        self.tracer.instant(
            f"probation {outcome}",
            "shadow",
            realized_win=realized_win,
            predicted_win=predicted_win,
        )

    def publish_corrections(self) -> None:
        """Expose the current per-op-type corrections as gauges."""
        for op, correction in self.residual.corrections().items():
            self.registry.gauge(
                "rap_calibration_correction",
                help="Multiplicative latency correction by op type",
                labels={"op": op},
            ).set(correction)

    # ------------------------------------------------------------------
    # Calibration handles

    def calibrated_predictor(self, base) -> CalibratedPredictor:
        """The base predictor wrapped with the current residual model."""
        if isinstance(base, CalibratedPredictor):
            base = base.base  # never stack corrections
        return CalibratedPredictor(base, self.residual)

    @property
    def predictor_mape(self) -> float:
        return self.residual.mean_absolute_percentage_error(corrected=False)

    @property
    def calibrated_mape(self) -> float:
        return self.residual.mean_absolute_percentage_error(corrected=True)

    # ------------------------------------------------------------------
    # Artifacts

    def flush(self, step: int | None = None) -> None:
        """Publish current metrics to the metrics directory (if configured)."""
        if self.metrics_dir is None:
            return
        self.metrics_dir.mkdir(parents=True, exist_ok=True)
        self.publish_corrections()
        write_prometheus(self.metrics_dir / "metrics.prom", self.registry)
        if self._jsonl is not None:
            self._jsonl.flush(self.registry, step=step)

    def write_artifacts(self, step: int | None = None) -> dict[str, Path]:
        """Publish metrics and the Chrome trace; returns the artifact paths."""
        if self.metrics_dir is None:
            return {}
        self.flush(step=step)
        trace_path = self.metrics_dir / "trace.json"
        from ..ioutil import atomic_write_text

        atomic_write_text(trace_path, self.tracer.to_chrome_trace(indent=2))
        return {
            "prometheus": self.metrics_dir / "metrics.prom",
            "jsonl": self.metrics_dir / "metrics.jsonl",
            "trace": trace_path,
        }

    def prometheus_text(self) -> str:
        self.publish_corrections()
        return to_prometheus_text(self.registry)

    def summary_lines(self) -> list[str]:
        """A compact human-readable metrics summary for the CLI exit path."""
        lines = [
            f"iterations: {int(self._iterations.value)}",
            f"calibration samples: {self.residual.total_samples}",
            f"drift events: {len(self.drift_events)}",
        ]
        if self.residual.total_samples:
            lines.append(
                f"predictor MAPE: {self.predictor_mape:.3f} raw"
                f" -> {self.calibrated_mape:.3f} calibrated"
            )
        corrections = {
            op: c for op, c in self.residual.corrections().items() if c != 1.0
        }
        if corrections:
            formatted = ", ".join(f"{op}={c:.3f}" for op, c in sorted(corrections.items()))
            lines.append(f"active corrections: {formatted}")
        if self._iteration_hist.count:
            mean = self._iteration_hist.sum / self._iteration_hist.count
            lines.append(f"mean iteration latency: {mean:.1f} us")
        return lines

    # ------------------------------------------------------------------
    # Checkpointing: calibration state rides inside runtime snapshots so a
    # resumed run replays (and keeps calibrating) bit-identically.

    def state_dict(self) -> dict:
        return {
            "residual": self.residual.state_dict(),
            "drift_detector": self.drift_detector.state_dict(),
            "drift_events": [e.to_dict() for e in self.drift_events],
            "tracer": self.tracer.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.residual.load_state(state.get("residual", {}))
        self.drift_detector.load_state(state.get("drift_detector", {}))
        self.drift_events = [
            DriftEvent(**e) for e in state.get("drift_events", ())
        ]
        self.tracer.load_state(state.get("tracer", {}))
        self._iteration_samples = []
