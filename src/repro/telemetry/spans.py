"""Span-based tracing over the simulator's logical clock.

The runtime executes on *simulated* microseconds, so spans carry explicit
timestamps rather than sampling a wall clock: the tracer keeps a running
trace clock that advances by each iteration's simulated duration, and
every span lands on that timeline. Iteration spans enclose the stage and
kernel spans of the simulated :class:`repro.gpusim.device.IterationResult`
(same ``pid``/``tid`` rows as :func:`repro.gpusim.export.to_chrome_trace`,
so one viewer profile reads both artifacts), and control-plane moments --
replans, drift detections, membership changes -- surface as instant
events.

All event construction goes through :mod:`repro.telemetry.chrome`; this
module only decides *what* to emit and *when*.
"""

from __future__ import annotations

from typing import Any, Mapping

from .chrome import (
    counter_event,
    duration_event,
    instant_event,
    process_metadata_events,
    trace_json,
)

__all__ = ["Tracer", "iteration_span_events", "RUNTIME_PID", "RUNTIME_TID"]

#: The synthetic process row hosting runtime-level (per-iteration) spans.
RUNTIME_PID = 1000
RUNTIME_TID = 0


def iteration_span_events(result, pid: int, t_offset: float = 0.0) -> list[dict]:
    """Duration events for one simulated iteration's stage and kernel spans.

    ``result`` is duck-typed (anything with ``stage_spans`` and
    ``kernel_spans``), so both the simulator's exporter and the runtime
    tracer share this one constructor: training stages land on ``tid 0``,
    preprocessing kernels on ``tid 1``, shifted by ``t_offset`` onto the
    caller's timeline.
    """
    events: list[dict] = []
    for span in result.stage_spans:
        events.append(
            duration_event(
                span.name,
                "training",
                span.t_start + t_offset,
                span.wall_time,
                pid,
                0,
                args={"standalone_us": span.standalone_us, "slowdown": span.slowdown},
            )
        )
    for span in result.kernel_spans:
        events.append(
            duration_event(
                span.name,
                "preprocessing",
                span.t_start + t_offset,
                span.wall_time,
                pid,
                1,
                args={"op": span.tag, "overlapped": span.overlapped},
            )
        )
    return events


class Tracer:
    """Collects trace events on a monotonically advancing simulated clock."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._known_pids: set[int] = set()
        self.clock_us = 0.0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    # ------------------------------------------------------------------

    def ensure_process(
        self, pid: int, name: str, threads: Mapping[int, str] | None = None
    ) -> None:
        """Emit the metadata block for ``pid`` once per tracer lifetime."""
        if pid in self._known_pids:
            return
        self._known_pids.add(pid)
        self._events.extend(process_metadata_events(pid, name, threads))

    def span(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int = RUNTIME_PID,
        tid: int = RUNTIME_TID,
        **args: Any,
    ) -> None:
        self._events.append(duration_event(name, cat, ts, dur, pid, tid, args or None))

    def instant(
        self,
        name: str,
        cat: str,
        ts: float | None = None,
        pid: int = RUNTIME_PID,
        tid: int = RUNTIME_TID,
        **args: Any,
    ) -> None:
        self._events.append(
            instant_event(name, cat, self.clock_us if ts is None else ts, pid, tid, args or None)
        )

    def counter(self, name: str, ts: float, pid: int, values: Mapping[str, float]) -> None:
        self._events.append(counter_event(name, ts, pid, values))

    # ------------------------------------------------------------------

    def record_iteration(
        self,
        iteration: int,
        iteration_us: float,
        per_gpu_results=(),
        **args: Any,
    ) -> float:
        """Record one runtime iteration and advance the trace clock.

        Emits the enclosing ``iteration N`` span on the runtime row, then
        nests each GPU's stage/kernel spans (when simulated results are
        available) at the iteration's start offset. Returns the span's
        start timestamp.
        """
        t0 = self.clock_us
        self.ensure_process(RUNTIME_PID, "runtime", {RUNTIME_TID: "iterations"})
        self._events.append(
            duration_event(
                f"iteration {iteration}", "runtime", t0, iteration_us,
                RUNTIME_PID, RUNTIME_TID, dict(args) or None,
            )
        )
        for gpu, result in enumerate(per_gpu_results):
            self.ensure_process(gpu, f"GPU {gpu}", {0: "training", 1: "preprocessing"})
            self._events.extend(iteration_span_events(result, gpu, t_offset=t0))
        self.clock_us = t0 + iteration_us
        return t0

    # ------------------------------------------------------------------

    def to_chrome_trace(self, indent: int | None = None) -> str:
        return trace_json(self._events, indent=indent)

    # Checkpointing: only the clock is control state; events are artifacts
    # of the *current* process and are not replayed across restarts.

    def state_dict(self) -> dict:
        return {"clock_us": self.clock_us}

    def load_state(self, state: dict) -> None:
        self.clock_us = float(state.get("clock_us", 0.0))
