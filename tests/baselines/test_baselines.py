"""Tests for the four comparison systems and their relative ordering."""

import pytest

from repro.baselines import (
    CpuWorkerPool,
    run_cuda_stream_baseline,
    run_mps_baseline,
    run_sequential_baseline,
    run_torcharrow_baseline,
    unfused_kernels_per_gpu,
)
from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=2048)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=2048)
    return graphs, workload


@pytest.fixture(scope="module")
def reports(setting):
    graphs, workload = setting
    return {
        "sequential": run_sequential_baseline(graphs, workload),
        "cuda_stream": run_cuda_stream_baseline(graphs, workload),
        "mps": run_mps_baseline(graphs, workload),
        "torcharrow": run_torcharrow_baseline(graphs, workload),
        "rap": RapPlanner(workload).plan_and_evaluate(graphs),
        "ideal": workload.ideal_throughput(),
    }


class TestUnfusedKernels:
    def test_one_kernel_per_op_per_gpu(self, setting):
        graphs, workload = setting
        per_gpu, _, _ = unfused_kernels_per_gpu(graphs, workload)
        assert len(per_gpu) == 2
        assert all(len(ks) == graphs.total_ops for ks in per_gpu)

    def test_comm_metadata(self, setting):
        graphs, workload = setting
        _, comm_bytes, transfers = unfused_kernels_per_gpu(graphs, workload)
        assert comm_bytes > 0
        assert transfers == 26  # one per sparse feature


class TestBaselineReports:
    def test_all_report_positive_throughput(self, reports):
        for name in ("sequential", "cuda_stream", "mps", "torcharrow"):
            assert reports[name].throughput > 0, name

    def test_sequential_exposes_everything(self, reports, setting):
        graphs, workload = setting
        seq = reports["sequential"]
        assert seq.exposed_preprocessing_us > 0
        assert seq.iteration_us > workload.ideal_iteration_us()

    def test_system_names(self, reports):
        for name in ("sequential", "cuda_stream", "mps", "torcharrow"):
            assert reports[name].system == name


class TestPaperOrdering:
    """The qualitative ranking of Fig. 9/10 must hold."""

    def test_rap_beats_every_baseline(self, reports):
        rap = reports["rap"].throughput
        for name in ("sequential", "cuda_stream", "mps", "torcharrow"):
            assert rap > reports[name].throughput, name

    def test_mps_beats_stream(self, reports):
        assert reports["mps"].throughput > reports["cuda_stream"].throughput

    def test_gpu_baselines_beat_torcharrow(self, reports):
        for name in ("sequential", "cuda_stream", "mps"):
            assert reports[name].throughput > reports["torcharrow"].throughput

    def test_rap_close_to_ideal(self, reports):
        assert reports["rap"].throughput >= 0.9 * reports["ideal"]

    def test_nothing_beats_ideal(self, reports):
        for name in ("sequential", "cuda_stream", "mps", "torcharrow"):
            assert reports[name].throughput <= reports["ideal"] * 1.001


class TestTorchArrowScaling:
    def test_flat_scaling_when_input_bound(self):
        """Fig. 9: adding GPUs barely helps a CPU-bound input pipeline."""
        graphs, schema = build_plan(2, rows=2048)
        tputs = []
        for n in (2, 4, 8):
            workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=n, local_batch=2048)
            tputs.append(run_torcharrow_baseline(graphs, workload).throughput)
        # CPU-bound: closer than 1.35x per doubling of GPUs.
        assert tputs[2] < tputs[0] * 1.8

    def test_worker_pool_saturates(self):
        graphs, _ = build_plan(0, rows=1024)
        pool = CpuWorkerPool(workers_per_gpu=8, max_effective_workers=24)
        # 2 GPUs = 16 workers (below the ceiling); 8 GPUs = 64 requested but
        # only 24 effective, so production time per global batch grows.
        t2 = pool.batch_production_us(graphs, 2)
        t8 = pool.batch_production_us(graphs, 8)
        assert t8 > 2 * t2

    def test_input_bound_flag(self):
        graphs, schema = build_plan(3, rows=4096)
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=4096)
        report = run_torcharrow_baseline(graphs, workload)
        assert report.details["input_bound"]
