"""Shared fixtures: small, fast instances of the main objects."""

from __future__ import annotations

import pytest

from repro.dlrm import TrainingWorkload, model_for_plan
from repro.gpusim import A100_SPEC, GpuDevice, KernelDesc, ResourceVector, StageProfile
from repro.preprocessing import SyntheticCriteoDataset, build_plan


@pytest.fixture(scope="session")
def plan0():
    """Plan 0 (Kaggle recipe) at a small batch size."""
    graphs, schema = build_plan(0, rows=512)
    return graphs, schema


@pytest.fixture(scope="session")
def plan1():
    graphs, schema = build_plan(1, rows=1024)
    return graphs, schema


@pytest.fixture(scope="session")
def workload_plan1(plan1):
    """A 2-GPU workload matching plan 1's model."""
    graphs, schema = plan1
    model = model_for_plan(graphs, schema)
    return TrainingWorkload(model, num_gpus=2, local_batch=1024)


@pytest.fixture(scope="session")
def small_batch(plan0):
    _, schema = plan0
    return SyntheticCriteoDataset(schema, seed=11).batch(512)


@pytest.fixture
def device():
    return GpuDevice(A100_SPEC)


@pytest.fixture
def mlp_stage():
    return StageProfile("mlp_fwd", 1000.0, ResourceVector(0.85, 0.30))


@pytest.fixture
def emb_stage():
    return StageProfile("emb_lookup", 800.0, ResourceVector(0.20, 0.90))


@pytest.fixture
def small_kernel():
    return KernelDesc("k_small", 200.0, ResourceVector(0.10, 0.05), num_warps=64, tag="FillNull")


@pytest.fixture
def big_kernel():
    return KernelDesc(
        "k_big",
        600.0,
        ResourceVector(0.80, 0.40),
        num_warps=6912,
        tag="Ngram",
        launch_us=5.0,
        warp_slots=6912,
    )
