"""Tests for the §10 runtime-variability (drift + replanning) extension."""

import pytest

from repro.core.adaptation import AdaptiveReplanner, drift_graph_set
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=2048)
    return graphs, workload


class TestDriftGraphSet:
    def test_rejects_nonpositive_scale(self, setting):
        graphs, _ = setting
        with pytest.raises(ValueError):
            drift_graph_set(graphs, 0.0)

    def test_scales_list_lengths(self, setting):
        graphs, _ = setting
        drifted = drift_graph_set(graphs, 2.0)
        for before, after in zip(graphs, drifted):
            assert after.avg_list_length == pytest.approx(2.0 * before.avg_list_length)

    def test_scales_costs(self, setting):
        graphs, workload = setting
        drifted = drift_graph_set(graphs, 3.0)
        assert drifted.standalone_latency_us(workload.spec) > graphs.standalone_latency_us(
            workload.spec
        )

    def test_identity_scale(self, setting):
        graphs, workload = setting
        same = drift_graph_set(graphs, 1.0)
        assert same.standalone_latency_us(workload.spec) == pytest.approx(
            graphs.standalone_latency_us(workload.spec)
        )


class TestAdaptiveReplanner:
    def test_rejects_bad_threshold(self, setting):
        graphs, workload = setting
        with pytest.raises(ValueError):
            AdaptiveReplanner(workload, graphs, drift_threshold=0.0)

    def test_small_drift_keeps_plan(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.25)
        event = replanner.observe(1.1)
        assert not event.replanned
        assert event.regeneration_seconds == 0.0

    def test_large_drift_triggers_replanning(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        event = replanner.observe(2.0)
        assert event.replanned
        assert event.regeneration_seconds > 0.0

    def test_regeneration_is_cheap(self, setting):
        """§10: regeneration is lightweight ('a few minutes' on hardware,
        well under a second here)."""
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs)
        event = replanner.observe(3.0)
        assert event.replanned
        assert event.regeneration_seconds < 30.0

    def test_replanned_no_worse_than_stale(self, setting):
        """Under heavy drift the regenerated plan beats the stale one."""
        graphs, workload = setting
        stale = AdaptiveReplanner(workload, graphs, drift_threshold=10.0)  # never replans
        fresh = AdaptiveReplanner(workload, graphs, drift_threshold=0.1)
        scale = 6.0
        stale_event = stale.observe(scale)
        fresh_event = fresh.observe(scale)
        assert not stale_event.replanned
        assert fresh_event.replanned
        assert fresh_event.iteration_us <= stale_event.iteration_us * 1.02

    def test_threshold_resets_after_replan(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        assert replanner.observe(2.0).replanned
        # 2.0 -> 2.1 is under 15% relative drift from the new baseline.
        assert not replanner.observe(2.1).replanned

    def test_event_log_accumulates(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs)
        for scale in (1.0, 1.05, 2.0):
            replanner.observe(scale)
        assert len(replanner.events) == 3
