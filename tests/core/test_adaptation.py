"""Tests for the §10 runtime-variability (drift + replanning) extension."""

import pytest

from repro.core.adaptation import AdaptiveReplanner, drift_graph_set, scale_plan_kernels
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=2048)
    return graphs, workload


class TestDriftGraphSet:
    def test_rejects_nonpositive_scale(self, setting):
        graphs, _ = setting
        with pytest.raises(ValueError):
            drift_graph_set(graphs, 0.0)

    def test_scales_list_lengths(self, setting):
        graphs, _ = setting
        drifted = drift_graph_set(graphs, 2.0)
        for before, after in zip(graphs, drifted):
            assert after.avg_list_length == pytest.approx(2.0 * before.avg_list_length)

    def test_scales_costs(self, setting):
        graphs, workload = setting
        drifted = drift_graph_set(graphs, 3.0)
        assert drifted.standalone_latency_us(workload.spec) > graphs.standalone_latency_us(
            workload.spec
        )

    def test_identity_scale(self, setting):
        graphs, workload = setting
        same = drift_graph_set(graphs, 1.0)
        assert same.standalone_latency_us(workload.spec) == pytest.approx(
            graphs.standalone_latency_us(workload.spec)
        )


class TestAdaptiveReplanner:
    def test_rejects_bad_threshold(self, setting):
        graphs, workload = setting
        with pytest.raises(ValueError):
            AdaptiveReplanner(workload, graphs, drift_threshold=0.0)

    def test_small_drift_keeps_plan(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.25)
        event = replanner.observe(1.1)
        assert not event.replanned
        assert event.regeneration_seconds == 0.0

    def test_large_drift_triggers_replanning(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        event = replanner.observe(2.0)
        assert event.replanned
        assert event.regeneration_seconds > 0.0

    def test_regeneration_is_cheap(self, setting):
        """§10: regeneration is lightweight ('a few minutes' on hardware,
        well under a second here)."""
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs)
        event = replanner.observe(3.0)
        assert event.replanned
        assert event.regeneration_seconds < 30.0

    def test_replanned_no_worse_than_stale(self, setting):
        """Under heavy drift the regenerated plan beats the stale one."""
        graphs, workload = setting
        stale = AdaptiveReplanner(workload, graphs, drift_threshold=10.0)  # never replans
        fresh = AdaptiveReplanner(workload, graphs, drift_threshold=0.1)
        scale = 6.0
        stale_event = stale.observe(scale)
        fresh_event = fresh.observe(scale)
        assert not stale_event.replanned
        assert fresh_event.replanned
        assert fresh_event.iteration_us <= stale_event.iteration_us * 1.02

    def test_threshold_resets_after_replan(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        assert replanner.observe(2.0).replanned
        # 2.0 -> 2.1 is under 15% relative drift from the new baseline.
        assert not replanner.observe(2.1).replanned

    def test_event_log_accumulates(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs)
        for scale in (1.0, 1.05, 2.0):
            replanner.observe(scale)
        assert len(replanner.events) == 3


class TestDriftEdgeCases:
    def test_rejects_negative_scale(self, setting):
        graphs, _ = setting
        with pytest.raises(ValueError):
            drift_graph_set(graphs, -2.0)

    def test_extreme_shrink_stays_valid(self, setting):
        graphs, workload = setting
        drifted = drift_graph_set(graphs, 1e-6)
        assert len(drifted) == len(graphs)
        assert drifted.standalone_latency_us(workload.spec) >= 0.0
        for g in drifted:
            assert g.avg_list_length > 0

    def test_extreme_growth_stays_finite(self, setting):
        graphs, workload = setting
        drifted = drift_graph_set(graphs, 1e6)
        latency = drifted.standalone_latency_us(workload.spec)
        assert latency > graphs.standalone_latency_us(workload.spec)
        assert latency < float("inf")

    def test_preserves_structure(self, setting):
        graphs, _ = setting
        drifted = drift_graph_set(graphs, 2.5)
        assert drifted.rows == graphs.rows
        for before, after in zip(graphs, drifted):
            assert after.name == before.name
            assert after.ops is before.ops
            assert after.consumer == before.consumer

    def test_drift_composes(self, setting):
        graphs, _ = setting
        twice = drift_graph_set(drift_graph_set(graphs, 2.0), 3.0)
        once = drift_graph_set(graphs, 6.0)
        for a, b in zip(twice, once):
            assert a.avg_list_length == pytest.approx(b.avg_list_length)


class TestScalePlanKernels:
    @pytest.fixture(scope="class")
    def plan(self, setting):
        from repro.core import RapPlanner

        graphs, workload = setting
        return RapPlanner(workload).plan(graphs)

    @pytest.mark.parametrize("scale", [0.0, -1.5])
    def test_rejects_nonpositive_scale(self, plan, scale):
        with pytest.raises(ValueError):
            scale_plan_kernels(plan, scale)

    def test_identity_scale_preserves_durations(self, plan):
        assignments, trailing = scale_plan_kernels(plan, 1.0)
        for per_gpu, orig in zip(assignments, plan.assignments_per_gpu):
            assert set(per_gpu) == set(orig)
            for idx in orig:
                for a, b in zip(per_gpu[idx], orig[idx]):
                    assert a.duration_us == b.duration_us

    def test_scales_every_duration(self, plan):
        assignments, trailing = scale_plan_kernels(plan, 2.0)
        for per_gpu, orig in zip(assignments, plan.assignments_per_gpu):
            for idx in orig:
                for a, b in zip(per_gpu[idx], orig[idx]):
                    assert a.duration_us == pytest.approx(2.0 * b.duration_us)
        for scaled, orig in zip(trailing, plan.trailing_per_gpu):
            for a, b in zip(scaled, orig):
                assert a.duration_us == pytest.approx(2.0 * b.duration_us)

    def test_leaves_plan_untouched(self, plan):
        before = [
            [k.duration_us for idx in sorted(per_gpu) for k in per_gpu[idx]]
            for per_gpu in plan.assignments_per_gpu
        ]
        scale_plan_kernels(plan, 5.0)
        after = [
            [k.duration_us for idx in sorted(per_gpu) for k in per_gpu[idx]]
            for per_gpu in plan.assignments_per_gpu
        ]
        assert before == after

    def test_preserves_non_duration_fields(self, plan):
        assignments, _ = scale_plan_kernels(plan, 3.0)
        for per_gpu, orig in zip(assignments, plan.assignments_per_gpu):
            for idx in orig:
                for a, b in zip(per_gpu[idx], orig[idx]):
                    assert a.name == b.name
                    assert a.demand == b.demand
                    assert a.tag == b.tag


class TestReplannerEdgeTrigger:
    def test_fires_once_per_crossing(self, setting):
        """Sustained drift at one scale replans exactly once, not per observe."""
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        fired = [replanner.observe(2.0).replanned for _ in range(4)]
        assert fired == [True, False, False, False]

    def test_second_crossing_fires_again(self, setting):
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        assert replanner.observe(2.0).replanned
        assert not replanner.observe(2.05).replanned
        assert replanner.observe(4.0).replanned

    def test_drift_back_to_baseline_fires(self, setting):
        """Returning to the original distribution is itself a crossing."""
        graphs, workload = setting
        replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.15)
        assert replanner.observe(2.0).replanned
        assert replanner.observe(1.0).replanned
