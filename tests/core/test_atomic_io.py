"""Tests for the shared crash-safe I/O helpers and their cache wiring."""

import json
import os

import pytest

from repro.core import RapPlanner
from repro.core.plan_cache import PlanCache, plan_cache_key
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.ioutil import advisory_lock, atomic_write_json, atomic_write_text
from repro.preprocessing import build_plan


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_residue(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "{}")
        atomic_write_text(tmp_path / "b.json", "{}")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json", "b.json"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "original")

        def boom(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement")
        # The original bytes survive and no temp file is left behind.
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_json_helper_is_canonical(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        data = json.loads(target.read_text())
        assert data == {"a": 2, "b": 1}
        # sort_keys makes the byte representation deterministic.
        assert target.read_text().index('"a"') < target.read_text().index('"b"')


class TestAdvisoryLock:
    def test_acquires_when_free(self, tmp_path):
        with advisory_lock(tmp_path / ".lock") as acquired:
            assert acquired is True

    def test_contention_yields_false(self, tmp_path):
        lock = tmp_path / ".lock"
        with advisory_lock(lock) as first:
            assert first is True
            with advisory_lock(lock) as second:
                assert second is False

    def test_released_after_exit(self, tmp_path):
        lock = tmp_path / ".lock"
        with advisory_lock(lock):
            pass
        with advisory_lock(lock) as again:
            assert again is True


@pytest.fixture(scope="module")
def plan_setting():
    graphs, schema = build_plan(0, rows=256)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=256)
    return graphs, workload


class TestCacheCrashSafety:
    def test_plan_cache_put_is_atomic(self, tmp_path, plan_setting):
        graphs, workload = plan_setting
        cache = PlanCache(tmp_path)
        planner = RapPlanner(workload, cache=cache)
        planner.plan(graphs)
        entries = list(tmp_path.glob("*.plan.json"))
        assert len(entries) == 1
        json.loads(entries[0].read_text())  # complete, parseable artifact
        assert not list(tmp_path.glob("*.tmp*"))

    def test_plan_cache_degrades_under_lock_contention(self, tmp_path, plan_setting):
        graphs, workload = plan_setting
        cache = PlanCache(tmp_path)
        planner = RapPlanner(workload, cache=cache)
        with advisory_lock(tmp_path / ".lock") as held:
            assert held
            plan = planner.plan(graphs)  # disk store silently skipped
        assert plan is not None
        assert not list(tmp_path.glob("*.plan.json"))
        # The memory tier still serves the plan.
        key = planner._cache_key(graphs)
        assert cache.get(key, workload, graphs) is not None

    def test_solve_cache_artifacts_are_parseable(self, tmp_path, plan_setting):
        graphs, workload = plan_setting
        cache = PlanCache(tmp_path)
        planner = RapPlanner(workload, cache=cache)
        planner.plan(graphs)
        for artifact in (tmp_path / "milp").glob("*.milp.json"):
            json.loads(artifact.read_text())


def test_cache_key_stable_under_lock_file(tmp_path, plan_setting):
    """The .lock file must never be mistaken for a cache entry."""
    graphs, workload = plan_setting
    cache = PlanCache(tmp_path)
    planner = RapPlanner(workload, cache=cache)
    plan = planner.plan(graphs)
    key = plan_cache_key(
        workload, graphs, "rap", True, True, None, None, planner.solver
    )
    assert cache.get(key, workload, graphs) is not None
    assert plan is not None
