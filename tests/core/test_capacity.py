"""Unit tests for the overlapping capacity estimator (§5.1)."""

import pytest

from repro.core.capacity import OverlappingCapacityEstimator, REFERENCE_PROBE
from repro.gpusim.device import StageProfile
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import ResourceVector


@pytest.fixture
def estimator():
    return OverlappingCapacityEstimator()


class TestAnalyticEstimate:
    def test_roomy_stage_full_capacity(self, estimator):
        stage = StageProfile("comm", 500.0, ResourceVector(0.05, 0.1))
        assert estimator.estimate(stage, REFERENCE_PROBE) == pytest.approx(500.0)

    def test_busy_stage_scaled_capacity(self, estimator):
        stage = StageProfile("mlp", 1000.0, ResourceVector(0.85, 0.3))
        cap = estimator.estimate(stage, REFERENCE_PROBE)
        # SM leftover 0.15 vs probe 0.30 -> admit 0.5.
        assert cap == pytest.approx(500.0)

    def test_saturated_stage_zero_capacity(self, estimator):
        stage = StageProfile("hot", 1000.0, ResourceVector(1.0, 1.0))
        assert estimator.estimate(stage, REFERENCE_PROBE) == pytest.approx(0.0)

    def test_cache_hit(self, estimator):
        stage = StageProfile("mlp", 1000.0, ResourceVector(0.85, 0.3))
        a = estimator.estimate(stage)
        b = estimator.estimate(stage)
        assert a == b
        assert len(estimator._cache) == 1

    def test_profile_stages(self, estimator):
        stages = [
            StageProfile("a", 100.0, ResourceVector(0.1, 0.1)),
            StageProfile("b", 200.0, ResourceVector(0.9, 0.9)),
        ]
        profile = estimator.profile_stages(stages)
        assert [c.stage_name for c in profile] == ["a", "b"]
        assert profile[0].capacity_us > profile[1].capacity_us
        assert profile[0].capacity_fraction == pytest.approx(1.0)

    def test_total_capacity(self, estimator):
        stages = [
            StageProfile("a", 100.0, ResourceVector(0.1, 0.1)),
            StageProfile("b", 200.0, ResourceVector(0.1, 0.1)),
        ]
        assert estimator.total_capacity(stages) == pytest.approx(300.0)


class TestEmpiricalMeasurement:
    def test_measure_agrees_with_estimate_when_probe_fits(self, estimator):
        stage = StageProfile("emb", 800.0, ResourceVector(0.2, 0.5))
        probe = KernelDesc("probe", 100.0, ResourceVector(0.3, 0.3))
        measured = estimator.measure(stage, probe)
        assert measured == pytest.approx(800.0)

    def test_measure_contended_probe_below_duration(self, estimator):
        stage = StageProfile("mlp", 1000.0, ResourceVector(0.85, 0.3))
        probe = KernelDesc("probe", 100.0, ResourceVector(0.6, 0.3))
        measured = estimator.measure(stage, probe)
        assert 0.0 <= measured < 1000.0

    def test_measure_zero_duration_stage(self, estimator):
        stage = StageProfile("empty", 0.0, ResourceVector(0.1, 0.1))
        probe = KernelDesc("probe", 10.0, ResourceVector(0.1, 0.1))
        assert estimator.measure(stage, probe) == 0.0

    def test_latency_abstraction_consistency(self, estimator):
        """Fig. 5a: a fitting kernel of total standalone latency == capacity
        co-runs exactly for free; slightly more spills."""
        stage = StageProfile("emb", 600.0, ResourceVector(0.2, 0.5))
        cap = estimator.estimate(stage, ResourceVector(0.3, 0.3))
        kernel = KernelDesc("k", cap, ResourceVector(0.3, 0.3))
        result = estimator.device.simulate_iteration([stage], assignments={0: [kernel]})
        assert result.total_time_us == pytest.approx(stage.duration_us)
        bigger = KernelDesc("k2", cap * 1.2, ResourceVector(0.3, 0.3))
        result2 = estimator.device.simulate_iteration([stage], assignments={0: [bigger]})
        assert result2.total_time_us > stage.duration_us
