"""Property tests: analytic capacity estimates vs empirical measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capacity import OverlappingCapacityEstimator
from repro.gpusim import KernelDesc, ResourceVector, StageProfile

utilization = st.builds(
    ResourceVector,
    sm=st.floats(min_value=0.0, max_value=0.95),
    dram=st.floats(min_value=0.0, max_value=0.95),
)


@settings(max_examples=30, deadline=None)
@given(
    duration=st.floats(min_value=50.0, max_value=3000.0),
    util=utilization,
    probe_sm=st.floats(min_value=0.01, max_value=0.9),
    probe_dram=st.floats(min_value=0.01, max_value=0.9),
)
def test_analytic_capacity_is_safe(duration, util, probe_sm, probe_dram):
    """A kernel sized to the analytic capacity never extends the stage.

    The estimator's promise (§5.1): total standalone latency up to C_op
    co-runs for free. Empirically verified against the device simulator
    for arbitrary stage profiles and probe demand mixes.
    """
    estimator = OverlappingCapacityEstimator()
    stage = StageProfile("s", duration, util)
    probe = ResourceVector(probe_sm, probe_dram)
    capacity = estimator.estimate(stage, probe)
    assert 0.0 <= capacity <= duration + 1e-9
    if capacity <= 1e-6:
        return
    fits = probe.fits_within(stage.leftover())
    kernel = KernelDesc("probe", capacity * 0.999, probe)
    result = estimator.device.simulate_iteration([stage], assignments={0: [kernel]})
    if fits:
        # Fitting probes at capacity leave the stage untouched.
        assert result.total_time_us == pytest.approx(duration, rel=1e-6)
    else:
        # Conservative regime: the estimate discounts for contention, so
        # the measured extension stays within the discount's bound.
        assert result.total_time_us <= duration * 2.0 + kernel.duration_us


@settings(max_examples=20, deadline=None)
@given(duration=st.floats(min_value=50.0, max_value=2000.0), util=utilization)
def test_empirical_measure_bounded_by_duration(duration, util):
    estimator = OverlappingCapacityEstimator()
    stage = StageProfile("s", duration, util)
    probe = KernelDesc("p", 100.0, ResourceVector(0.3, 0.3))
    measured = estimator.measure(stage, probe)
    assert 0.0 <= measured <= duration + 1e-6


@settings(max_examples=20, deadline=None)
@given(duration=st.floats(min_value=100.0, max_value=2000.0), util=utilization)
def test_analytic_and_empirical_agree_for_fitting_probes(duration, util):
    """When the probe fits the leftover, both paths say 'the whole stage'."""
    estimator = OverlappingCapacityEstimator()
    stage = StageProfile("s", duration, util)
    probe_demand = ResourceVector(
        min(0.9, stage.leftover().sm * 0.5 + 1e-6),
        min(0.9, stage.leftover().dram * 0.5 + 1e-6),
    )
    analytic = estimator.estimate(stage, probe_demand)
    empirical = estimator.measure(stage, KernelDesc("p", 50.0, probe_demand))
    assert analytic == pytest.approx(duration)
    assert empirical == pytest.approx(duration, rel=0.02)
