"""Tests that generated plan code executes the same transforms as the planner."""

import numpy as np
import pytest

from repro.core.codegen import generate_plan_module, load_plan_module
from repro.core.planner import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import SyntheticCriteoDataset, build_plan, execute_graph_set


@pytest.fixture(scope="module")
def plan_and_graphs():
    graphs, schema = build_plan(0, rows=256)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=256)
    plan = RapPlanner(workload).plan(graphs)
    return plan, graphs, schema


class TestCodegen:
    def test_source_is_compilable(self, plan_and_graphs):
        plan, _, _ = plan_and_graphs
        source = generate_plan_module(plan)
        compile(source, "<plan>", "exec")

    def test_module_structure(self, plan_and_graphs):
        plan, _, _ = plan_and_graphs
        module = load_plan_module(generate_plan_module(plan))
        assert set(module.SCHEDULE) == {0, 1}
        assert callable(module.run_gpu)
        assert callable(module.run_all)

    def test_each_op_emitted_once_per_gpu(self, plan_and_graphs):
        plan, _, _ = plan_and_graphs
        module = load_plan_module(generate_plan_module(plan))
        for gpu, entries in module.SCHEDULE.items():
            outputs = [e[2] for e in entries]
            assert len(outputs) == len(set(outputs))

    def test_generated_code_matches_direct_execution(self, plan_and_graphs):
        """Running the generated module reproduces the library's outputs."""
        plan, graphs, schema = plan_and_graphs
        module = load_plan_module(generate_plan_module(plan))
        ds = SyntheticCriteoDataset(schema, seed=21)

        batch_direct = ds.batch(256)
        direct = execute_graph_set(graphs, batch_direct)

        # Union of both GPUs' schedules covers every graph (plan 1 maps
        # sparse graphs to single GPUs); execute each against a fresh copy.
        generated = ds.batch(256)
        for gpu in module.SCHEDULE:
            module.run_gpu(gpu, generated)

        for graph in graphs:
            out = graph.output_op.output
            direct_col = direct.column(out)
            gen_col = generated.column(out)
            np.testing.assert_array_equal(np.asarray(direct_col.values), np.asarray(gen_col.values))

    def test_header_mentions_strategy(self, plan_and_graphs):
        plan, _, _ = plan_and_graphs
        source = generate_plan_module(plan)
        assert "Mapping strategy: rap" in source
        assert "fusion enabled" in source
