"""Unit tests for the co-running cost model (§5.3)."""

import pytest

from repro.core.capacity import OverlappingCapacityEstimator
from repro.core.cost_model import CoRunCost, CoRunningCostModel, StageCost
from repro.gpusim.device import StageProfile
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import ResourceVector


@pytest.fixture
def cost_model():
    return CoRunningCostModel(OverlappingCapacityEstimator())


def stage(name="s", duration=1000.0, sm=0.2, dram=0.3):
    return StageProfile(name, duration, ResourceVector(sm, dram))


def kernel(duration=100.0, name="k"):
    return KernelDesc(name, duration, ResourceVector(0.2, 0.2), tag="FillNull")


class TestStageCost:
    def test_exposed_positive_delta(self):
        c = StageCost("s", 0, capacity_us=100.0, assigned_latency_us=150.0)
        assert c.exposed_us == pytest.approx(50.0)
        assert c.slack_us == 0.0

    def test_negative_delta_clamped(self):
        c = StageCost("s", 0, capacity_us=100.0, assigned_latency_us=60.0)
        assert c.exposed_us == 0.0
        assert c.slack_us == pytest.approx(40.0)


class TestCoRunCost:
    def test_totals(self):
        cost = CoRunCost(
            stage_costs=[
                StageCost("a", 0, 100.0, 150.0),
                StageCost("b", 1, 200.0, 100.0),
            ],
            trailing_latency_us=30.0,
        )
        assert cost.exposed_us == pytest.approx(80.0)
        assert cost.total_capacity_us == pytest.approx(300.0)
        assert cost.total_assigned_us == pytest.approx(280.0)
        assert not cost.is_contention_free

    def test_contention_free(self):
        cost = CoRunCost(stage_costs=[StageCost("a", 0, 100.0, 50.0)])
        assert cost.is_contention_free


class TestCoRunningCostModel:
    def test_oracle_latency_without_predictor(self, cost_model):
        k = kernel(duration=123.0)
        assert cost_model.kernel_latency(k) == 123.0

    def test_evaluate_l_delta_formula(self, cost_model):
        """The Fig.-6 cost: L_delta = sum(l_i) - C_op per stage."""
        s = stage(duration=1000.0, sm=0.2, dram=0.3)  # probe fits: capacity = 1000
        ks = [kernel(400.0, "k1"), kernel(700.0, "k2")]
        cost = cost_model.evaluate([s], {0: ks})
        assert cost.stage_costs[0].capacity_us == pytest.approx(1000.0)
        assert cost.stage_costs[0].assigned_latency_us == pytest.approx(1100.0)
        assert cost.exposed_us == pytest.approx(100.0)

    def test_trailing_fully_exposed(self, cost_model):
        cost = cost_model.evaluate([stage()], {}, trailing=[kernel(250.0)])
        assert cost.exposed_us == pytest.approx(250.0)

    def test_empty_schedule_zero_cost(self, cost_model):
        cost = cost_model.evaluate([stage()], {})
        assert cost.exposed_us == 0.0
        assert cost.is_contention_free

    def test_predicted_cost_matches_simulation(self, cost_model):
        """Cost-model L_delta agrees with the simulator for fitting kernels."""
        s = stage(duration=800.0, sm=0.3, dram=0.4)
        ks = [kernel(300.0, "k1"), kernel(900.0, "k2")]  # total 1200 vs cap 800
        cost = cost_model.evaluate([s], {0: ks})
        sim = cost_model.estimator.device.simulate_iteration([s], assignments={0: ks})
        predicted_total = s.duration_us + cost.exposed_us
        assert sim.total_time_us == pytest.approx(predicted_total, rel=0.01)
