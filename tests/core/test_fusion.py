"""Unit tests for the horizontal fusion pass and sharding helpers (§6)."""

import pytest

from repro.core.fusion import (
    HorizontalFusionPass,
    build_fusion_instance,
    shard_by_latency,
    shard_to_fit_demand,
)
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import A100_SPEC, ResourceVector
from repro.preprocessing.graph import FeatureGraph
from repro.preprocessing.ops import Clamp, FillNull, FirstX, Logit, SigridHash

SLOTS = A100_SPEC.total_warp_slots


def sparse_chain(j):
    p = f"s{j}"
    return FeatureGraph(
        name=f"g{j}",
        ops=[
            SigridHash(inputs=(f"sparse_{j}",), output=f"{p}_h"),
            FirstX(inputs=(f"{p}_h",), output=f"{p}_f", x=2),
            Clamp(inputs=(f"{p}_f",), output=f"{p}_o", upper=99),
        ],
        consumer=f"table:sparse_{j}",
    )


def dense_chain(i):
    p = f"d{i}"
    return FeatureGraph(
        name=f"gd{i}",
        ops=[
            FillNull(inputs=(f"dense_{i}",), output=f"{p}_f"),
            Logit(inputs=(f"{p}_f",), output=f"{p}_o"),
        ],
        consumer="dense",
    )


class TestBuildFusionInstance:
    def test_global_indices(self):
        graphs = [sparse_chain(0), sparse_chain(1)]
        inst, origin = build_fusion_instance(graphs)
        assert inst.num_ops == 6
        assert origin[0] == (0, 0)
        assert origin[3] == (1, 0)

    def test_deps_offset_per_graph(self):
        graphs = [sparse_chain(0), sparse_chain(1)]
        inst, _ = build_fusion_instance(graphs)
        assert (0, 1) in inst.deps
        assert (3, 4) in inst.deps
        # No cross-graph dependencies.
        assert all((a < 3) == (b < 3) for a, b in inst.deps)


class TestHorizontalFusionPass:
    def test_empty_graphs(self):
        plan = HorizontalFusionPass().run([], rows=128)
        assert plan.kernels == []

    def test_fusion_reduces_kernel_count(self):
        graphs = [sparse_chain(j) for j in range(8)]
        fused = HorizontalFusionPass(enabled=True).run(graphs, rows=1024)
        unfused = HorizontalFusionPass(enabled=False).run(graphs, rows=1024)
        assert unfused.num_kernels == 24
        assert fused.num_kernels < unfused.num_kernels
        assert fused.num_kernels == 3  # one fused kernel per chain level

    def test_fusion_reduces_total_latency(self):
        graphs = [sparse_chain(j) for j in range(8)]
        fused = HorizontalFusionPass(enabled=True).run(graphs, rows=1024)
        unfused = HorizontalFusionPass(enabled=False).run(graphs, rows=1024)
        assert fused.total_latency_us < unfused.total_latency_us

    def test_disabled_pass_marks_plan(self):
        graphs = [dense_chain(0)]
        plan = HorizontalFusionPass(enabled=False).run(graphs, rows=64)
        assert not plan.fused
        assert plan.max_fusion_degree == 1

    def test_disabled_pass_respects_dependency_order(self):
        graphs = [sparse_chain(0)]
        plan = HorizontalFusionPass(enabled=False).run(graphs, rows=64)
        assert [k.tag for k in plan.kernels] == ["SigridHash", "FirstX", "Clamp"]

    def test_mixed_type_groups_never_fused(self):
        graphs = [dense_chain(0), sparse_chain(0)]
        plan = HorizontalFusionPass(enabled=True).run(graphs, rows=64)
        for k in plan.kernels:
            members = k.meta.get("fused", [k.name])
            tags = {m.split(":")[0] for m in members}
            assert len(tags) == 1

    def test_fusion_degree_reported(self):
        graphs = [dense_chain(i) for i in range(5)]
        plan = HorizontalFusionPass(enabled=True).run(graphs, rows=64)
        assert plan.max_fusion_degree == 5


class TestShardByLatency:
    def test_fits_returns_none(self):
        k = KernelDesc("k", 100.0, ResourceVector(0.2, 0.2))
        assert shard_by_latency(k, 150.0) is None

    def test_splits_at_capacity(self):
        k = KernelDesc(
            "k", 405.0, ResourceVector(1.0, 0.5), num_warps=4 * SLOTS,
            launch_us=5.0, warp_slots=SLOTS,
        )
        shards = shard_by_latency(k, 200.0)
        assert shards is not None
        first, rest = shards
        assert first.duration_us == pytest.approx(200.0, rel=0.05)

    def test_tiny_capacity_returns_none(self):
        k = KernelDesc("k", 1000.0, ResourceVector(0.5, 0.5))
        assert shard_by_latency(k, 10.0, min_fraction=0.05) is None

    def test_zero_duration_kernel(self):
        k = KernelDesc("k", 0.0, ResourceVector(0.0, 0.0))
        assert shard_by_latency(k, 10.0) is None


class TestShardToFitDemand:
    def test_already_fits(self):
        k = KernelDesc("k", 100.0, ResourceVector(0.2, 0.2))
        pieces = shard_to_fit_demand(k, ResourceVector(0.5, 0.5))
        assert pieces == [k]

    def test_splits_to_fit(self):
        k = KernelDesc(
            "k", 405.0, ResourceVector(1.0, 0.4), num_warps=4 * SLOTS,
            launch_us=5.0, warp_slots=SLOTS,
        )
        pieces = shard_to_fit_demand(k, ResourceVector(0.3, 0.5))
        assert pieces is not None
        assert len(pieces) >= 3
        for p in pieces:
            assert p.demand.sm <= 0.3 + 0.05

    def test_subwave_sharding_inflates_total_latency(self):
        """Sub-wave pieces each cost a full wave: the pieces fit the thin
        leftover, but their total duration honestly exceeds the parent's."""
        k = KernelDesc(
            "k", 205.0, ResourceVector(0.8, 0.4), num_warps=int(0.8 * SLOTS),
            launch_us=5.0, warp_slots=SLOTS,
        )
        pieces = shard_to_fit_demand(k, ResourceVector(0.3, 0.5))
        assert pieces is not None
        assert all(p.demand.sm <= 0.3 + 0.02 for p in pieces)
        assert sum(p.duration_us for p in pieces) > k.duration_us

    def test_too_thin_leftover_returns_none(self):
        k = KernelDesc("k", 100.0, ResourceVector(1.0, 0.1), num_warps=SLOTS, warp_slots=SLOTS)
        assert shard_to_fit_demand(k, ResourceVector(0.01, 0.5), max_pieces=16) is None

    def test_zero_leftover_returns_none(self):
        k = KernelDesc("k", 100.0, ResourceVector(0.5, 0.5))
        assert shard_to_fit_demand(k, ResourceVector(0.0, 0.0)) is None

    def test_pieces_cover_all_work(self):
        k = KernelDesc(
            "k", 405.0, ResourceVector(1.0, 0.6), num_warps=4 * SLOTS,
            launch_us=5.0, warp_slots=SLOTS,
        )
        pieces = shard_to_fit_demand(k, ResourceVector(0.4, 0.6))
        total_warps = sum(p.num_warps for p in pieces)
        assert total_warps == pytest.approx(k.num_warps, rel=0.05)
