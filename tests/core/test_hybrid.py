"""Tests for the §10 hybrid CPU+GPU preprocessing extension."""

import pytest

from repro.core.hybrid import HybridPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import DENSE_CONSUMER, build_plan


@pytest.fixture(scope="module")
def plan3_workload():
    graphs, schema = build_plan(3, rows=4096)
    model = model_for_plan(graphs, schema)
    return graphs, TrainingWorkload(model, num_gpus=2, local_batch=4096)


class TestHybridSplit:
    def test_rejects_bad_fill(self, plan3_workload):
        _, workload = plan3_workload
        with pytest.raises(ValueError):
            HybridPlanner(workload, capacity_fill=0.0)

    def test_everything_fits_when_capacity_is_plentiful(self):
        graphs, schema = build_plan(0, rows=1024)
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=1024)
        split = HybridPlanner(workload).split(graphs)
        assert split.num_cpu_features == 0
        assert split.num_gpu_features == len(graphs)

    def test_overload_spills_to_cpu(self, plan3_workload):
        graphs, workload = plan3_workload
        planner = HybridPlanner(workload, capacity_fill=0.05)
        split = planner.split(graphs)
        assert split.num_cpu_features > 0
        assert split.num_gpu_features + split.num_cpu_features == len(graphs)

    def test_dense_graphs_never_leave_gpu(self, plan3_workload):
        graphs, workload = plan3_workload
        split = HybridPlanner(workload, capacity_fill=0.03).split(graphs)
        for graph in split.cpu_graphs:
            assert graph.consumer != DENSE_CONSUMER

    def test_gpu_side_prefers_cpu_hostile_graphs(self, plan3_workload):
        """Feature-generation (Ngram) graphs stay on the GPU first."""
        graphs, workload = plan3_workload
        split = HybridPlanner(workload, capacity_fill=0.05).split(graphs)
        gpu_names = {g.name for g in split.gpu_graphs}
        ngram_graphs = [g.name for g in graphs if g.name.startswith("g_ngram")]
        kept = sum(1 for n in ngram_graphs if n in gpu_names)
        assert kept >= len(ngram_graphs) * 0.8

    def test_budget_respected(self, plan3_workload):
        graphs, workload = plan3_workload
        planner = HybridPlanner(workload, capacity_fill=0.05)
        split = planner.split(graphs)
        assert split.gpu_latency_us <= split.capacity_budget_us * 1.001


class TestHybridReport:
    def test_full_pipeline(self, plan3_workload):
        graphs, workload = plan3_workload
        report = HybridPlanner(workload, capacity_fill=0.05).plan_and_evaluate(graphs)
        assert report.iteration_us >= report.rap_report.iteration_us
        assert report.throughput > 0

    def test_no_cpu_part_means_no_cpu_time(self):
        graphs, schema = build_plan(0, rows=1024)
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=1024)
        report = HybridPlanner(workload).plan_and_evaluate(graphs)
        assert report.cpu_production_us == 0.0
        assert not report.cpu_bound

    def test_hybrid_beats_pure_cpu_for_heavy_plans(self, plan3_workload):
        """Even a constrained hybrid beats sending everything to the CPU."""
        from repro.baselines import run_torcharrow_baseline

        graphs, workload = plan3_workload
        hybrid = HybridPlanner(workload, capacity_fill=0.05).plan_and_evaluate(graphs)
        pure_cpu = run_torcharrow_baseline(graphs, workload)
        assert hybrid.throughput > pure_cpu.throughput
