"""Unit tests for inter-batch workload interleaving (§6.3)."""

import pytest

from repro.core.interleaving import InterbatchInterleaver, SteadyStateTimeline
from repro.preprocessing.executor import DataPreparation


def prep(total=300.0):
    return DataPreparation(alloc_us=total / 3, h2d_copy_us=total / 3, dispatch_us=total / 3)


class TestSteadyStateTimeline:
    def test_interleaved_hides_prep(self):
        t = SteadyStateTimeline(gpu_iteration_us=1000.0, data_prep_us=300.0, interleaved=True)
        assert t.iteration_us == 1000.0
        assert t.data_stall_us == 0.0
        assert t.hidden_fraction == 1.0

    def test_interleaved_prep_bound(self):
        t = SteadyStateTimeline(gpu_iteration_us=1000.0, data_prep_us=1500.0, interleaved=True)
        assert t.iteration_us == 1500.0
        assert t.data_stall_us == 500.0
        assert t.hidden_fraction == pytest.approx(1.0 - 500.0 / 1500.0)

    def test_serial_always_pays(self):
        t = SteadyStateTimeline(gpu_iteration_us=1000.0, data_prep_us=300.0, interleaved=False)
        assert t.iteration_us == 1300.0
        assert t.data_stall_us == 300.0
        assert t.hidden_fraction == 0.0

    def test_zero_prep(self):
        t = SteadyStateTimeline(gpu_iteration_us=100.0, data_prep_us=0.0, interleaved=False)
        assert t.hidden_fraction == 1.0


class TestInterbatchInterleaver:
    def test_enabled_vs_disabled(self):
        on = InterbatchInterleaver(enabled=True).steady_state(1000.0, prep(400.0))
        off = InterbatchInterleaver(enabled=False).steady_state(1000.0, prep(400.0))
        assert on.iteration_us < off.iteration_us

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            InterbatchInterleaver().steady_state(-1.0, prep())

    def test_pipeline_timeline_staggering(self):
        rows = InterbatchInterleaver(enabled=True).pipeline_timeline(3, 1000.0, prep())
        assert len(rows) == 3
        first = rows[0]
        # Fig. 8: training batch i co-runs batch i+1's kernels while the
        # CPU prepares batch i+2.
        assert first["preprocessing_batch"] == first["training_batch"] + 1
        assert first["preparing_batch"] == first["training_batch"] + 2

    def test_pipeline_timeline_serial_alignment(self):
        rows = InterbatchInterleaver(enabled=False).pipeline_timeline(2, 1000.0, prep())
        assert rows[0]["preprocessing_batch"] == rows[0]["training_batch"]

    def test_pipeline_rejects_zero_batches(self):
        with pytest.raises(ValueError):
            InterbatchInterleaver().pipeline_timeline(0, 100.0, prep())

    def test_timeline_timestamps_monotone(self):
        rows = InterbatchInterleaver().pipeline_timeline(4, 500.0, prep())
        starts = [r["t_start_us"] for r in rows]
        assert starts == sorted(starts)
