"""Tests for the ML latency predictor (§5.2, Table 5)."""

import pytest

from repro.core.latency_predictor import (
    PREDICTOR_FAMILIES,
    PreprocessingLatencyPredictor,
    collect_training_samples,
    kernel_family,
    kernel_features,
    train_default_predictor,
)
from repro.gpusim.kernel import KernelDesc, fuse_kernels
from repro.gpusim.resources import A100_SPEC, ResourceVector
from repro.preprocessing.ops import FillNull, Ngram


@pytest.fixture(scope="module")
def trained():
    """A predictor trained on a reduced sample count (fast but realistic)."""
    return train_default_predictor(num_samples=1500, seed=3)


class TestFeatureExtraction:
    def test_family_mapping(self):
        ngram = Ngram(inputs=("a", "b"), output="y", n=2).gpu_kernel(128)
        fill = FillNull(inputs=("x",), output="y").gpu_kernel(128)
        assert kernel_family(ngram) == "Ngram"
        assert kernel_family(fill) == "1D Ops"

    def test_unknown_tag_falls_back(self):
        k = KernelDesc("mystery", 10.0, ResourceVector(0.1, 0.1), tag="unknown")
        assert kernel_family(k) == "1D Ops"

    def test_features_fixed_length(self):
        k = FillNull(inputs=("x",), output="y").gpu_kernel(128)
        assert len(kernel_features(k)) == 6

    def test_features_handle_missing_meta(self):
        k = KernelDesc("bare", 10.0, ResourceVector(0.1, 0.1), num_warps=7)
        feats = kernel_features(k)
        assert feats[0] == 7.0
        assert feats[3] == 0.0  # rows unknown

    def test_features_skip_string_params(self):
        from repro.preprocessing.ops import Cast

        k = Cast(inputs=("x",), output="y", dtype="float64").gpu_kernel(64)
        feats = kernel_features(k)
        assert feats[-1] == 0.0

    def test_fused_kernel_features(self):
        members = [FillNull(inputs=(f"x{i}",), output=f"y{i}").gpu_kernel(256) for i in range(4)]
        fused = fuse_kernels(members, A100_SPEC)
        feats = kernel_features(fused)
        assert feats[2] == 4.0  # members
        assert feats[3] == 4 * 256  # aggregated rows


class TestSampleCollection:
    def test_count_and_families(self):
        samples = collect_training_samples(num_samples=200, seed=1)
        assert len(samples) == 200
        assert {s.family for s in samples} <= set(PREDICTOR_FAMILIES)

    def test_deterministic(self):
        a = collect_training_samples(num_samples=50, seed=2)
        b = collect_training_samples(num_samples=50, seed=2)
        assert [s.latency_us for s in a] == [s.latency_us for s in b]

    def test_positive_latencies(self):
        samples = collect_training_samples(num_samples=100, seed=4)
        assert all(s.latency_us > 0 for s in samples)


class TestPredictor:
    def test_unfitted_raises(self):
        p = PreprocessingLatencyPredictor()
        assert not p.is_fitted
        k = FillNull(inputs=("x",), output="y").gpu_kernel(64)
        with pytest.raises(RuntimeError):
            p.predict_kernel(k)

    def test_fit_requires_samples(self):
        with pytest.raises(ValueError):
            PreprocessingLatencyPredictor().fit([])

    def test_table5_accuracy_band(self, trained):
        """Every family is well into the Table-5 accuracy band.

        The unit test trains on ~1.5K samples for speed; the full 11K-sample
        run (benchmarks/test_table5.py) reaches the paper's 92.9-98.5%.
        """
        _, accuracy = trained
        assert set(accuracy) == set(PREDICTOR_FAMILIES)
        for family, acc in accuracy.items():
            assert acc >= 0.85, f"{family} accuracy {acc:.3f} below band"

    def test_prediction_close_to_truth(self, trained):
        predictor, _ = trained
        k = Ngram(inputs=("a", "b", "c"), output="y", n=3).gpu_kernel(8192)
        pred = predictor.predict_kernel(k)
        assert pred == pytest.approx(k.duration_us, rel=0.35)

    def test_predict_total_is_sum(self, trained):
        predictor, _ = trained
        ks = [FillNull(inputs=(f"x{i}",), output=f"y{i}").gpu_kernel(512) for i in range(3)]
        assert predictor.predict_total(ks) == pytest.approx(
            sum(predictor.predict_kernel(k) for k in ks)
        )
