"""Unit tests for preprocessing-graph mapping (§7.2, Fig. 12)."""

import pytest

from repro.core.capacity import OverlappingCapacityEstimator
from repro.core.cost_model import CoRunningCostModel
from repro.core.fusion import HorizontalFusionPass
from repro.core.mapping import RapMapper, map_data_locality, map_data_parallel
from repro.core.scheduler import ResourceAwareScheduler
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import DENSE_CONSUMER, build_plan, build_skewed_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=4, local_batch=1024)
    return graphs, workload


@pytest.fixture(scope="module")
def mapper(setting):
    _, workload = setting
    cost_model = CoRunningCostModel(OverlappingCapacityEstimator(workload.spec))
    return RapMapper(
        workload,
        cost_model,
        HorizontalFusionPass(workload.spec),
        ResourceAwareScheduler(cost_model),
    )


class TestDataParallelMapping:
    def test_every_graph_everywhere(self, setting):
        graphs, workload = setting
        mapping = map_data_parallel(graphs, workload)
        for graph in graphs:
            assert len(mapping.placements[graph.name]) == workload.num_gpus

    def test_slice_rows(self, setting):
        graphs, workload = setting
        mapping = map_data_parallel(graphs, workload)
        for placements in mapping.placements.values():
            assert all(rows == workload.local_batch for _, rows in placements)

    def test_pays_communication(self, setting):
        graphs, workload = setting
        mapping = map_data_parallel(graphs, workload)
        assert mapping.input_comm_bytes > 0

    def test_balanced_work(self, setting):
        graphs, workload = setting
        mapping = map_data_parallel(graphs, workload)
        loads = mapping.work_us_per_gpu(graphs, workload.spec)
        assert max(loads) == pytest.approx(min(loads), rel=0.01)


class TestDataLocalityMapping:
    def test_zero_communication(self, setting):
        graphs, workload = setting
        mapping = map_data_locality(graphs, workload)
        assert mapping.input_comm_bytes == 0.0

    def test_sparse_graphs_on_table_owner(self, setting):
        graphs, workload = setting
        mapping = map_data_locality(graphs, workload)
        for graph in graphs:
            if graph.consumer == DENSE_CONSUMER:
                continue
            owners = workload.placement.gpus_for_table(graph.consumer)
            placed = [g for g, _ in mapping.placements[graph.name]]
            assert placed == owners

    def test_sparse_rows_are_global_batch(self, setting):
        graphs, workload = setting
        mapping = map_data_locality(graphs, workload)
        for graph in graphs:
            if graph.consumer != DENSE_CONSUMER:
                rows = mapping.placements[graph.name][0][1]
                assert rows == workload.global_batch

    def test_dense_graphs_everywhere_at_local_rows(self, setting):
        graphs, workload = setting
        mapping = map_data_locality(graphs, workload)
        for graph in graphs:
            if graph.consumer == DENSE_CONSUMER:
                placements = mapping.placements[graph.name]
                assert len(placements) == workload.num_gpus
                assert all(rows == workload.local_batch for _, rows in placements)


class TestRapMapper:
    def test_evaluate_produces_per_gpu_schedules(self, setting, mapper):
        graphs, workload = setting
        evaluation = mapper.evaluate(graphs, map_data_locality(graphs, workload))
        assert len(evaluation.schedules) == workload.num_gpus
        assert evaluation.objective_us >= 0.0

    def test_optimize_no_worse_than_data_locality(self, setting, mapper):
        graphs, workload = setting
        dl = mapper.evaluate(graphs, map_data_locality(graphs, workload))
        rap = mapper.optimize(graphs)
        assert rap.objective_us <= dl.objective_us + 1e-6

    def test_skewed_workload_rebalanced(self):
        """Fig. 12: on a skewed plan RAP beats both DP and DL mappings."""
        graphs, schema = build_skewed_plan(rows=1024, num_gpus=4)
        model = model_for_plan(graphs, schema)
        workload = TrainingWorkload(model, num_gpus=4, local_batch=1024)
        cost_model = CoRunningCostModel(OverlappingCapacityEstimator(workload.spec))
        mapper = RapMapper(
            workload,
            cost_model,
            HorizontalFusionPass(workload.spec),
            ResourceAwareScheduler(cost_model),
        )
        dp = mapper.evaluate(graphs, map_data_parallel(graphs, workload))
        dl = mapper.evaluate(graphs, map_data_locality(graphs, workload))
        rap = mapper.optimize(graphs)
        assert rap.objective_us <= dl.objective_us + 1e-6
        assert rap.objective_us <= dp.objective_us + 1e-6

    def test_single_gpu_short_circuits(self):
        graphs, schema = build_plan(0, rows=512)
        model = model_for_plan(graphs, schema)
        workload = TrainingWorkload(model, num_gpus=1, local_batch=512)
        cost_model = CoRunningCostModel(OverlappingCapacityEstimator(workload.spec))
        mapper = RapMapper(
            workload,
            cost_model,
            HorizontalFusionPass(workload.spec),
            ResourceAwareScheduler(cost_model),
        )
        result = mapper.optimize(graphs)
        # Single GPU: the result is the data-locality layout, relabeled.
        assert result.mapping.strategy == "rap"
        assert result.comm_us == 0.0
        for graph in graphs:
            assert result.mapping.placements[graph.name][0][0] == 0
