"""Correctness tests for the planner fast path (plan cache + replan)."""

import pytest

from repro.core.adaptation import drift_graph_set
from repro.core.plan_cache import (
    PlanCache,
    graph_set_fingerprint,
    graph_structure_key,
    plan_cache_key,
    workload_fingerprint,
)
from repro.core.planner import RapPlanner
from repro.core.serialization import plan_to_json
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=1024)
    return graphs, workload


def make_key(workload, graphs, solver=None, **overrides):
    kwargs = dict(
        mapping_strategy="rap",
        fusion_enabled=True,
        interleaving_enabled=True,
        exact_fusion=None,
        max_mapping_moves=None,
        solver=solver or BranchAndBoundSolver(),
    )
    kwargs.update(overrides)
    return plan_cache_key(workload, graphs, **kwargs)


class TestBitIdentity:
    """Cached and parallel plans must be indistinguishable from the
    sequential cold search -- byte for byte."""

    def test_warm_hit_is_bit_identical(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        cold = planner.plan(graphs)
        warm = planner.plan(graphs)
        assert planner.stats.cache_hits == 1
        assert plan_to_json(warm) == plan_to_json(cold)

    def test_disk_tier_is_bit_identical(self, setting, tmp_path):
        graphs, workload = setting
        cold = RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs)
        # A fresh planner over the same directory models a process restart.
        fresh = RapPlanner(workload, cache=PlanCache(tmp_path))
        warm = fresh.plan(graphs)
        assert fresh.cache.stats.hits == 1
        assert plan_to_json(warm) == plan_to_json(cold)

    def test_parallel_search_is_bit_identical(self, setting):
        graphs, workload = setting
        sequential = RapPlanner(workload).plan(graphs)
        parallel = RapPlanner(workload, parallel_search=True).plan(graphs)
        assert plan_to_json(parallel) == plan_to_json(sequential)

    def test_cached_plan_predicts_same_exposure(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        cold = planner.plan(graphs)
        warm = planner.plan(graphs)
        assert warm.predicted_exposed_us == cold.predicted_exposed_us


class TestInvalidation:
    """Any input the search consumes must change the cache key."""

    def test_kernel_change_invalidates(self, setting):
        graphs, workload = setting
        base = make_key(workload, graphs)
        drifted = drift_graph_set(graphs, 1.5)
        assert make_key(workload, drifted) != base
        assert graph_set_fingerprint(drifted) != graph_set_fingerprint(graphs)

    def test_capacity_change_invalidates(self, setting):
        graphs, workload = setting
        other = TrainingWorkload(workload.config, num_gpus=2, local_batch=2048)
        assert workload_fingerprint(other) != workload_fingerprint(workload)
        assert make_key(other, graphs) != make_key(workload, graphs)

    def test_solver_limit_change_invalidates(self, setting):
        graphs, workload = setting
        base = make_key(workload, graphs)
        limited = BranchAndBoundSolver(node_limit=5)
        assert make_key(workload, graphs, solver=limited) != base

    def test_planner_knob_change_invalidates(self, setting):
        graphs, workload = setting
        base = make_key(workload, graphs)
        assert make_key(workload, graphs, fusion_enabled=False) != base
        assert make_key(workload, graphs, mapping_strategy="data_parallel") != base
        assert make_key(workload, graphs, max_mapping_moves=3) != base

    def test_code_version_invalidates(self, setting, monkeypatch):
        graphs, workload = setting
        base = make_key(workload, graphs)
        monkeypatch.setattr(
            "repro.core.plan_cache.PLANNER_CODE_VERSION", "rap-planner-next"
        )
        assert make_key(workload, graphs) != base

    def test_planner_respects_invalidation(self, setting):
        """End to end: a drifted graph set re-searches instead of hitting."""
        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        planner.plan(graphs)
        planner.plan(drift_graph_set(graphs, 2.0))
        assert planner.stats.cache_hits == 0
        assert planner.stats.cache_misses == 2

    def test_torn_disk_entry_is_a_miss(self, setting, tmp_path):
        graphs, workload = setting
        RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs)
        for f in tmp_path.glob("*.plan.json"):
            f.write_text(f.read_text()[:40])
        fresh = RapPlanner(workload, cache=PlanCache(tmp_path))
        plan = fresh.plan(graphs)
        assert plan is not None
        assert fresh.cache.stats.hits == 0


class TestIncrementalReplan:
    def test_structure_key_ignores_drift(self, setting):
        graphs, _ = setting
        drifted = drift_graph_set(graphs, 3.0)
        for before, after in zip(graphs, drifted):
            assert graph_structure_key(after) == graph_structure_key(before)

    def test_drift_replans_incrementally(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload)
        base = planner.plan(graphs)
        replanned = planner.replan(drift_graph_set(graphs, 1.5), previous=base)
        assert planner.stats.incremental_replans == 1
        assert planner.stats.full_replans == 0
        assert len(replanned.assignments_per_gpu) == workload.num_gpus

    def test_replan_reuses_fusion_solves(self, setting):
        """Drift rescales latencies, not structure: every fusion instance
        the replan lowers is a memo hit, so no MILP re-runs."""
        graphs, workload = setting
        planner = RapPlanner(workload)
        base = planner.plan(graphs)
        hits_before = planner.fusion.memo_hits
        memo_size = len(planner.fusion._memo)
        planner.replan(drift_graph_set(graphs, 1.5), previous=base)
        assert planner.fusion.memo_hits > hits_before
        assert len(planner.fusion._memo) == memo_size  # nothing new solved

    def test_new_feature_forces_full_replan(self, setting):
        graphs, workload = setting
        other_graphs, _ = build_plan(2, rows=1024)
        planner = RapPlanner(workload)
        base = planner.plan(graphs)
        planner.replan(other_graphs, previous=base)
        assert planner.stats.full_replans == 1
        assert planner.stats.incremental_replans == 0

    def test_replan_without_previous_is_plain_plan(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload)
        plan = planner.replan(graphs, previous=None)
        assert plan.predicted_exposed_us == RapPlanner(workload).plan(graphs).predicted_exposed_us
        assert planner.stats.incremental_replans == 0

    def test_replan_hits_cache_for_unchanged_instance(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        base = planner.plan(graphs)
        again = planner.replan(graphs, previous=base)
        assert planner.stats.cache_hits == 1
        assert plan_to_json(again) == plan_to_json(base)

    def test_incremental_replan_quality(self, setting):
        """The warm-started search lands within a whisker of from-scratch."""
        graphs, workload = setting
        planner = RapPlanner(workload)
        base = planner.plan(graphs)
        drifted = drift_graph_set(graphs, 1.3)
        incremental = planner.replan(drifted, previous=base)
        scratch = RapPlanner(workload).plan(drifted)
        assert incremental.predicted_exposed_us <= scratch.predicted_exposed_us * 1.10 + 1.0


class TestCacheTelemetry:
    """Satellite: hit/miss/disk-tier accounting flows into the registry."""

    def test_disk_hits_counted_separately(self, setting, tmp_path):
        graphs, workload = setting
        RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs)
        fresh = RapPlanner(workload, cache=PlanCache(tmp_path))
        fresh.plan(graphs)  # disk hit (fresh process memory)
        fresh.plan(graphs)  # memory hit
        assert fresh.cache.stats.hits == 2
        assert fresh.cache.stats.disk_hits == 1
        assert fresh.cache.stats.to_dict()["disk_hits"] == 1

    def test_bind_metrics_mirrors_counts(self, setting, tmp_path):
        from repro.telemetry import MetricsRegistry

        graphs, workload = setting
        RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs)
        registry = MetricsRegistry()
        cache = PlanCache(tmp_path)
        cache.bind_metrics(registry, cache="plan")
        planner = RapPlanner(workload, cache=cache)
        planner.plan(graphs)  # disk hit
        planner.plan(graphs)  # memory hit
        by_labels = {}
        for name, _, _, children in registry.families():
            for child in children:
                by_labels[(name, tuple(sorted(child.labels.items())))] = child.value
        assert by_labels[
            ("rap_cache_hits_total", (("cache", "plan"), ("tier", "disk")))
        ] == 1.0
        assert by_labels[
            ("rap_cache_hits_total", (("cache", "plan"), ("tier", "memory")))
        ] == 1.0

    def test_unbound_cache_needs_no_registry(self, setting):
        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        planner.plan(graphs)
        planner.plan(graphs)
        assert planner.stats.cache_hits == 1  # no registry, no crash


class TestPredictorFingerprintKeys:
    def test_fingerprint_changes_key(self, setting):
        graphs, workload = setting
        base = make_key(workload, graphs)
        calibrated = make_key(workload, graphs, predictor_fingerprint="calibrated:x:y")
        assert base != calibrated

    def test_same_fingerprint_same_key(self, setting):
        graphs, workload = setting
        a = make_key(workload, graphs, predictor_fingerprint="f")
        b = make_key(workload, graphs, predictor_fingerprint="f")
        assert a == b

    def test_recalibrated_planner_does_not_reuse_stale_plan(self, setting):
        from repro.telemetry import CalibrationSample, ResidualModel, TelemetrySession

        graphs, workload = setting
        planner = RapPlanner(workload, cache=PlanCache())
        planner.plan(graphs)
        telemetry = TelemetrySession(residual=ResidualModel())
        for i in range(16):
            telemetry.residual.record(
                CalibrationSample("Clamp", 100.0, 250.0, iteration=i)
            )
        planner.set_predictor(telemetry.calibrated_predictor(None))
        planner.plan(graphs)
        assert planner.stats.cache_hits == 0
        assert planner.stats.cache_misses == 2
