"""Unit tests for the end-to-end RAP planner and its ablations."""

import pytest

from repro.core.planner import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=1024)
    return graphs, workload


class TestRapPlanner:
    def test_rejects_bad_strategy(self, setting):
        _, workload = setting
        with pytest.raises(ValueError):
            RapPlanner(workload, mapping_strategy="bogus")

    def test_plan_produces_per_gpu_structures(self, setting):
        graphs, workload = setting
        plan = RapPlanner(workload).plan(graphs)
        assert len(plan.assignments_per_gpu) == 2
        assert len(plan.trailing_per_gpu) == 2
        assert len(plan.data_prep_per_gpu) == 2

    def test_light_plan_fully_hidden(self, setting):
        """Plan 1 fits in leftover capacity: training runs at ideal speed."""
        graphs, workload = setting
        report = RapPlanner(workload).plan_and_evaluate(graphs)
        assert report.training_slowdown == pytest.approx(1.0, abs=0.02)
        assert report.exposed_preprocessing_us == pytest.approx(0.0, abs=1.0)

    def test_rap_beats_ablations(self, setting):
        graphs, workload = setting
        full = RapPlanner(workload).plan_and_evaluate(graphs)
        no_fusion = RapPlanner(workload, fusion_enabled=False).plan_and_evaluate(graphs)
        dp_mapping = RapPlanner(workload, mapping_strategy="data_parallel").plan_and_evaluate(graphs)
        assert full.throughput >= no_fusion.throughput - 1e-6
        assert full.throughput >= dp_mapping.throughput - 1e-6

    def test_dp_mapping_pays_communication(self, setting):
        graphs, workload = setting
        plan = RapPlanner(workload, mapping_strategy="data_parallel").plan(graphs)
        assert plan.input_comm_bytes > 0

    def test_rap_mapping_zero_comm_on_balanced_plan(self, setting):
        graphs, workload = setting
        plan = RapPlanner(workload).plan(graphs)
        assert plan.input_comm_bytes == 0.0

    def test_interleaving_ablation(self, setting):
        graphs, workload = setting
        on = RapPlanner(workload, interleaving_enabled=True).plan_and_evaluate(graphs)
        off = RapPlanner(workload, interleaving_enabled=False).plan_and_evaluate(graphs)
        assert on.iteration_us <= off.iteration_us

    def test_report_throughput_consistent(self, setting):
        graphs, workload = setting
        report = RapPlanner(workload).plan_and_evaluate(graphs)
        assert report.throughput == pytest.approx(
            workload.global_batch / (report.iteration_us * 1e-6)
        )

    def test_kernel_counts_reported(self, setting):
        graphs, workload = setting
        plan = RapPlanner(workload).plan(graphs)
        counts = plan.num_kernels_per_gpu()
        assert len(counts) == 2
        assert all(c > 0 for c in counts)
