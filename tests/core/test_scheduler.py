"""Unit tests for the Algorithm-1 resource-aware scheduler (§7.1)."""

import pytest

from repro.core.capacity import OverlappingCapacityEstimator
from repro.core.cost_model import CoRunningCostModel
from repro.core.scheduler import ResourceAwareScheduler
from repro.gpusim.device import GpuDevice, StageProfile
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import A100_SPEC, ResourceVector

SLOTS = A100_SPEC.total_warp_slots


@pytest.fixture
def scheduler():
    return ResourceAwareScheduler(CoRunningCostModel(OverlappingCapacityEstimator()))


def stages():
    return [
        StageProfile("emb", 800.0, ResourceVector(0.2, 0.5)),   # roomy
        StageProfile("mlp", 1000.0, ResourceVector(0.95, 0.3)),  # tight
        StageProfile("comm", 400.0, ResourceVector(0.05, 0.1)),  # roomy
    ]


def kernel(duration, sm=0.2, dram=0.2, name="k", warps=400):
    return KernelDesc(
        name, duration, ResourceVector(sm, dram), num_warps=warps,
        tag="FillNull", launch_us=min(5.0, duration), warp_slots=SLOTS,
    )


class TestSchedule:
    def test_empty_queue(self, scheduler):
        s = scheduler.schedule(stages(), [])
        assert s.num_assigned == 0
        assert s.trailing == []
        assert s.exposed_us == 0.0

    def test_small_workload_fully_hidden(self, scheduler):
        ks = [kernel(100.0, name=f"k{i}") for i in range(4)]
        s = scheduler.schedule(stages(), ks)
        assert s.trailing == []
        assert s.cost.is_contention_free

    def test_prefers_high_capacity_stages(self, scheduler):
        ks = [kernel(100.0, name=f"k{i}") for i in range(2)]
        s = scheduler.schedule(stages(), ks)
        # The tight MLP stage (index 1) should not be selected before the
        # roomy embedding/comm stages cover the workload.
        assert 1 not in s.assignments

    def test_overflow_becomes_trailing(self, scheduler):
        ks = [kernel(5000.0, name=f"k{i}") for i in range(3)]
        s = scheduler.schedule(stages(), ks)
        assert s.trailing or s.exposed_us > 0

    def test_fused_kernel_degree_reduced_across_stages(self, scheduler):
        """A fused kernel larger than any single stage's capacity is split
        (by latency and/or fusion-degree reduction) rather than exposed."""
        from repro.gpusim.kernel import fuse_kernels

        members = [
            kernel(180.0, sm=0.15, dram=0.1, warps=int(0.15 * SLOTS), name=f"m{i}")
            for i in range(12)
        ]
        fused = fuse_kernels(members, A100_SPEC)
        s = scheduler.schedule(stages(), [fused])
        # The fused kernel was decomposed: several placed kernels exist.
        assert s.num_assigned >= 2
        # And the placement is cheap: most of the work is hidden.
        assert s.exposed_us < fused.duration_us

    def test_schedule_is_contention_free_on_device(self, scheduler):
        """The scheduler's placements never slow training when simulated."""
        ks = [kernel(150.0, sm=0.4, dram=0.3, warps=int(0.4 * SLOTS), name=f"k{i}") for i in range(5)]
        s = scheduler.schedule(stages(), ks)
        device = GpuDevice()
        result = device.simulate_iteration(stages(), assignments=s.assignments)
        standalone = sum(st.duration_us for st in stages())
        assert result.training_time_us <= standalone * 1.02

    def test_demand_sharding_fits_leftover(self, scheduler):
        fat = kernel(300.0, sm=0.9, dram=0.2, warps=int(0.9 * SLOTS), name="fat")
        s = scheduler.schedule(stages(), [fat])
        for idx, ks in s.assignments.items():
            leftover = stages()[idx].leftover()
            for k in ks:
                assert k.demand.sm <= leftover.sm + 0.02

    def test_all_work_accounted(self, scheduler):
        ks = [kernel(200.0, name=f"k{i}") for i in range(8)]
        s = scheduler.schedule(stages(), ks)
        placed = s.num_assigned + len(s.trailing)
        assert placed >= len(ks)  # sharding may increase the count

    def test_cost_attached(self, scheduler):
        s = scheduler.schedule(stages(), [kernel(100.0)])
        assert s.cost is not None
        assert s.cost.total_capacity_us > 0
