"""Property tests for the Algorithm-1 scheduler over random workloads.

The scheduler's contract, fuzzed:

1. **Contention-free**: a schedule never slows simulated training beyond a
   small tolerance -- the one thing RAP must never do.
2. **Work conservation**: every queued kernel's work is either placed or
   trailing; warps are conserved under fusion-degree reduction/sharding.
3. **Never worse than fully exposed**: co-running with the schedule never
   exceeds (training + all preprocessing serialized).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capacity import OverlappingCapacityEstimator
from repro.core.cost_model import CoRunningCostModel
from repro.core.fusion import HorizontalFusionPass
from repro.core.scheduler import ResourceAwareScheduler
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.gpusim import GpuDevice
from repro.preprocessing import RandomPlanConfig, generate_random_plan


@pytest.fixture(scope="module")
def machinery():
    cost_model = CoRunningCostModel(OverlappingCapacityEstimator())
    return (
        HorizontalFusionPass(),
        ResourceAwareScheduler(cost_model),
        GpuDevice(),
    )


def _setup(seed: int, rows: int = 2048):
    cfg = RandomPlanConfig(
        num_dense=3, num_sparse=6, num_ngram_graphs=2, max_chain=4, seed=seed
    )
    graphs, schema = generate_random_plan(cfg, rows=rows)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=rows)
    return graphs, workload


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_schedule_never_slows_training(machinery, seed):
    fusion, scheduler, device = machinery
    graphs, workload = _setup(seed)
    stages = workload.stages_for_gpu(0)
    plan = fusion.run(list(graphs), graphs.rows)
    schedule = scheduler.schedule(stages, plan.kernels)
    result = device.simulate_iteration(
        stages, assignments=schedule.assignments, trailing_kernels=schedule.trailing
    )
    standalone = sum(s.duration_us for s in stages)
    assert result.training_time_us <= standalone * 1.02


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_schedule_work_conservation(machinery, seed):
    fusion, scheduler, _ = machinery
    graphs, workload = _setup(seed)
    stages = workload.stages_for_gpu(0)
    plan = fusion.run(list(graphs), graphs.rows)
    schedule = scheduler.schedule(stages, plan.kernels)
    queued_warps = sum(k.num_warps for k in plan.kernels)
    placed_warps = sum(k.num_warps for k in schedule.assigned_kernels())
    trailing_warps = sum(k.num_warps for k in schedule.trailing)
    # Rounding in sharding may drift by a few warps per shard.
    assert placed_warps + trailing_warps == pytest.approx(queued_warps, rel=0.02)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_schedule_never_worse_than_sequential(machinery, seed):
    fusion, scheduler, device = machinery
    graphs, workload = _setup(seed)
    stages = workload.stages_for_gpu(0)
    plan = fusion.run(list(graphs), graphs.rows)
    schedule = scheduler.schedule(stages, plan.kernels)
    co_run = device.simulate_iteration(
        stages, assignments=schedule.assignments, trailing_kernels=schedule.trailing
    )
    sequential = sum(s.duration_us for s in stages) + plan.total_latency_us
    assert co_run.total_time_us <= sequential * 1.05


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_cost_model_tracks_simulation(machinery, seed):
    """The predicted exposure never understates the simulated slowdown by
    much: cost-model optimism would let contention through."""
    fusion, scheduler, device = machinery
    graphs, workload = _setup(seed)
    stages = workload.stages_for_gpu(0)
    plan = fusion.run(list(graphs), graphs.rows)
    schedule = scheduler.schedule(stages, plan.kernels)
    result = device.simulate_iteration(
        stages, assignments=schedule.assignments, trailing_kernels=schedule.trailing
    )
    standalone = sum(s.duration_us for s in stages)
    simulated_overhead = result.total_time_us - standalone
    predicted_overhead = schedule.exposed_us
    assert simulated_overhead <= predicted_overhead + standalone * 0.05
