"""Round-trip tests for plan serialization."""

import json

import pytest

from repro.core import RapPlanner, generate_plan_module, plan_from_json, plan_to_json
from repro.core.serialization import FORMAT_VERSION
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=1024)
    planner = RapPlanner(workload)
    return graphs, workload, planner, planner.plan(graphs)


class TestRoundTrip:
    def test_json_is_valid(self, setting):
        _, _, _, plan = setting
        data = json.loads(plan_to_json(plan))
        assert data["format_version"] == FORMAT_VERSION
        assert data["workload"]["num_gpus"] == 2

    def test_simulates_identically(self, setting):
        graphs, workload, planner, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        original = planner.evaluate(plan)
        reloaded = planner.evaluate(restored)
        assert reloaded.iteration_us == pytest.approx(original.iteration_us)
        assert reloaded.exposed_preprocessing_us == pytest.approx(
            original.exposed_preprocessing_us
        )

    def test_mapping_preserved(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        assert restored.mapping.strategy == plan.mapping.strategy
        assert restored.mapping.placements == plan.mapping.placements
        assert restored.input_comm_bytes == plan.input_comm_bytes

    def test_kernel_fields_preserved(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        orig = [k for a in plan.assignments_per_gpu for ks in a.values() for k in ks]
        back = [k for a in restored.assignments_per_gpu for ks in a.values() for k in ks]
        assert len(orig) == len(back)
        for a, b in zip(orig, back):
            assert a.name == b.name
            assert a.duration_us == pytest.approx(b.duration_us)
            assert a.demand.sm == pytest.approx(b.demand.sm)
            assert a.tag == b.tag

    def test_codegen_still_works(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        source = generate_plan_module(restored)
        assert "SCHEDULE" in source


class TestValidation:
    def test_rejects_wrong_version(self, setting):
        graphs, workload, _, plan = setting
        data = json.loads(plan_to_json(plan))
        data["format_version"] = 999
        with pytest.raises(ValueError):
            plan_from_json(json.dumps(data), workload, graphs)

    def test_rejects_shape_mismatch(self, setting):
        graphs, workload, _, plan = setting
        other = TrainingWorkload(workload.config, num_gpus=4, local_batch=1024)
        with pytest.raises(ValueError):
            plan_from_json(plan_to_json(plan), other, graphs)
