"""Round-trip tests for plan serialization."""

import json

import pytest

from repro.core import (
    PlanLoadError,
    RapPlanner,
    generate_plan_module,
    load_plan,
    plan_from_json,
    plan_to_json,
    save_plan,
)
from repro.core.serialization import resilience_from_json
from repro.core.serialization import FORMAT_VERSION
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=1024)
    planner = RapPlanner(workload)
    return graphs, workload, planner, planner.plan(graphs)


class TestRoundTrip:
    def test_json_is_valid(self, setting):
        _, _, _, plan = setting
        data = json.loads(plan_to_json(plan))
        assert data["format_version"] == FORMAT_VERSION
        assert data["workload"]["num_gpus"] == 2

    def test_simulates_identically(self, setting):
        graphs, workload, planner, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        original = planner.evaluate(plan)
        reloaded = planner.evaluate(restored)
        assert reloaded.iteration_us == pytest.approx(original.iteration_us)
        assert reloaded.exposed_preprocessing_us == pytest.approx(
            original.exposed_preprocessing_us
        )

    def test_mapping_preserved(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        assert restored.mapping.strategy == plan.mapping.strategy
        assert restored.mapping.placements == plan.mapping.placements
        assert restored.input_comm_bytes == plan.input_comm_bytes

    def test_kernel_fields_preserved(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        orig = [k for a in plan.assignments_per_gpu for ks in a.values() for k in ks]
        back = [k for a in restored.assignments_per_gpu for ks in a.values() for k in ks]
        assert len(orig) == len(back)
        for a, b in zip(orig, back):
            assert a.name == b.name
            assert a.duration_us == pytest.approx(b.duration_us)
            assert a.demand.sm == pytest.approx(b.demand.sm)
            assert a.tag == b.tag

    def test_fused_members_survive_the_round_trip(self, setting):
        # A fused kernel's member descriptors are the de-fuse path of the
        # fused-OOM recovery ladder; dropping them made a restored plan
        # recover differently than the run that wrote the checkpoint
        # (found by the scenario forge, seed 6).
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        orig = [k for a in plan.assignments_per_gpu for ks in a.values() for k in ks]
        back = [k for a in restored.assignments_per_gpu for ks in a.values() for k in ks]
        fused = [(a, b) for a, b in zip(orig, back) if a.meta.get("member_kernels")]
        assert fused, "plan 1 fuses at least one kernel group"
        for a, b in fused:
            members_a = a.meta["member_kernels"]
            members_b = b.meta["member_kernels"]
            assert [m.name for m in members_a] == [m.name for m in members_b]
            for ma, mb in zip(members_a, members_b):
                assert ma.duration_us == pytest.approx(mb.duration_us)
                assert ma.tag == mb.tag
                assert "member_kernels" not in (mb.meta or {})

    def test_codegen_still_works(self, setting):
        graphs, workload, _, plan = setting
        restored = plan_from_json(plan_to_json(plan), workload, graphs)
        source = generate_plan_module(restored)
        assert "SCHEDULE" in source


class TestValidation:
    def test_rejects_wrong_version(self, setting):
        graphs, workload, _, plan = setting
        data = json.loads(plan_to_json(plan))
        data["format_version"] = 999
        with pytest.raises(ValueError):
            plan_from_json(json.dumps(data), workload, graphs)

    def test_rejects_shape_mismatch(self, setting):
        graphs, workload, _, plan = setting
        other = TrainingWorkload(workload.config, num_gpus=4, local_batch=1024)
        with pytest.raises(ValueError):
            plan_from_json(plan_to_json(plan), other, graphs)


class TestPlanLoadError:
    def test_truncated_json_names_the_path(self, setting):
        graphs, workload, _, plan = setting
        truncated = plan_to_json(plan)[:80]
        with pytest.raises(PlanLoadError) as err:
            plan_from_json(truncated, workload, graphs, path="/tmp/broken.json")
        assert "/tmp/broken.json" in str(err.value)
        assert "not valid JSON" in str(err.value)
        assert err.value.path == "/tmp/broken.json"

    def test_non_object_payload_rejected(self, setting):
        graphs, workload, _, _ = setting
        with pytest.raises(PlanLoadError):
            plan_from_json("[1, 2, 3]", workload, graphs)

    def test_wrong_version_is_plan_load_error(self, setting):
        graphs, workload, _, plan = setting
        data = json.loads(plan_to_json(plan))
        data["format_version"] = 999
        with pytest.raises(PlanLoadError) as err:
            plan_from_json(json.dumps(data), workload, graphs)
        assert "999" in str(err.value)

    def test_missing_section_is_plan_load_error(self, setting):
        graphs, workload, _, plan = setting
        data = json.loads(plan_to_json(plan))
        del data["assignments_per_gpu"]
        with pytest.raises(PlanLoadError) as err:
            plan_from_json(json.dumps(data), workload, graphs)
        assert "malformed" in str(err.value)

    def test_corrupt_kernel_entry_is_plan_load_error(self, setting):
        graphs, workload, _, plan = setting
        data = json.loads(plan_to_json(plan))
        data["trailing_per_gpu"] = [[{"name": "orphan"}]]
        with pytest.raises(PlanLoadError):
            plan_from_json(json.dumps(data), workload, graphs)

    def test_missing_file_is_plan_load_error(self, setting, tmp_path):
        graphs, workload, _, _ = setting
        missing = tmp_path / "nope.json"
        with pytest.raises(PlanLoadError) as err:
            load_plan(missing, workload, graphs)
        assert str(missing) in str(err.value)

    def test_save_load_round_trip(self, setting, tmp_path):
        graphs, workload, planner, plan = setting
        target = tmp_path / "plan.json"
        save_plan(target, plan)
        restored = load_plan(target, workload, graphs)
        assert planner.evaluate(restored).iteration_us == pytest.approx(
            planner.evaluate(plan).iteration_us
        )

    def test_corruption_round_trip(self, setting, tmp_path):
        """A plan saved, corrupted on disk, and reloaded fails loudly."""
        graphs, workload, _, plan = setting
        target = tmp_path / "plan.json"
        save_plan(target, plan)
        target.write_text(target.read_text()[: target.stat().st_size // 2])
        with pytest.raises(PlanLoadError) as err:
            load_plan(target, workload, graphs)
        assert str(target) in str(err.value)

    def test_resilience_round_trip(self, setting):
        graphs, workload, _, plan = setting
        payload = {"iterations": [], "faults": [], "transitions": [], "retries": 3}
        out = plan_to_json(plan, resilience=payload)
        assert resilience_from_json(out) == payload
        assert resilience_from_json(plan_to_json(plan)) is None

    def test_resilience_must_be_object(self):
        with pytest.raises(PlanLoadError):
            resilience_from_json('{"resilience": [1]}')
