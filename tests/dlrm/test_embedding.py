"""Unit tests for embedding-table placement."""

import pytest

from repro.dlrm.embedding import EmbeddingPlacement, place_tables
from repro.dlrm.model import DLRMConfig, EmbeddingTableConfig, MlpArch, kaggle_model


def tiny_config(sizes, threshold=8e9):
    tables = tuple(
        EmbeddingTableConfig(name=f"t{i}", hash_size=s, dim=4) for i, s in enumerate(sizes)
    )
    return DLRMConfig(
        name="tiny",
        dense_arch=MlpArch(4, (8,)),
        top_arch_layers=(8,),
        tables=tables,
        row_wise_threshold_bytes=threshold,
    )


class TestPlaceTables:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            place_tables(kaggle_model(), 0)

    def test_every_table_placed(self):
        m = kaggle_model()
        p = place_tables(m, 4)
        for t in m.tables:
            assert p.is_placed(t.name)

    def test_single_gpu_gets_everything(self):
        m = kaggle_model()
        p = place_tables(m, 1)
        assert len(p.tables_on_gpu(0)) == m.num_tables

    def test_memory_balance(self):
        m = kaggle_model()
        p = place_tables(m, 4)
        loads = p.memory_per_gpu(m)
        assert max(loads) < 2.0 * min(loads)

    def test_row_wise_threshold(self):
        cfg = tiny_config([100, 10_000_000], threshold=1_000_000)
        p = place_tables(cfg, 2)
        assert "t1" in p.row_wise_tables
        assert p.gpus_for_table("t1") == [0, 1]

    def test_row_wise_disabled_on_single_gpu(self):
        cfg = tiny_config([10_000_000], threshold=1_000_000)
        p = place_tables(cfg, 1)
        assert not p.row_wise_tables


class TestEmbeddingPlacement:
    def test_unplaced_table_raises(self):
        p = EmbeddingPlacement(num_gpus=2)
        with pytest.raises(KeyError):
            p.gpus_for_table("missing")

    def test_tables_on_gpu_includes_row_wise(self):
        p = EmbeddingPlacement(num_gpus=2, table_to_gpu={"a": 0}, row_wise_tables={"rw"})
        assert set(p.tables_on_gpu(0)) == {"a", "rw"}
        assert set(p.tables_on_gpu(1)) == {"rw"}

    def test_lookup_bytes_per_gpu(self):
        cfg = tiny_config([100, 100])
        p = EmbeddingPlacement(num_gpus=2, table_to_gpu={"t0": 0, "t1": 1})
        loads = p.lookup_bytes_per_gpu(cfg, 10)
        assert loads[0] == pytest.approx(loads[1])
        assert loads[0] > 0

    def test_row_wise_lookup_split(self):
        cfg = tiny_config([100])
        p = EmbeddingPlacement(num_gpus=4, row_wise_tables={"t0"})
        loads = p.lookup_bytes_per_gpu(cfg, 8)
        assert len(set(round(x, 9) for x in loads)) == 1
