"""Unit tests for DLRM model configuration (Table 2)."""

import pytest

from repro.dlrm.model import (
    DLRMConfig,
    EmbeddingTableConfig,
    MlpArch,
    kaggle_model,
    model_for_plan,
    terabyte_model,
)
from repro.preprocessing import build_plan


class TestMlpArch:
    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            MlpArch(input_dim=0, layers=(10,))
        with pytest.raises(ValueError):
            MlpArch(input_dim=10, layers=())
        with pytest.raises(ValueError):
            MlpArch(input_dim=10, layers=(5, -1))

    def test_param_count(self):
        arch = MlpArch(input_dim=4, layers=(3, 2))
        # (4*3 + 3) + (3*2 + 2) = 15 + 8
        assert arch.num_params == 23

    def test_forward_flops(self):
        arch = MlpArch(input_dim=4, layers=(3,))
        assert arch.forward_flops(10) == pytest.approx(2 * 10 * 12)

    def test_backward_is_double_forward(self):
        arch = MlpArch(input_dim=8, layers=(4, 2))
        assert arch.backward_flops(16) == pytest.approx(2 * arch.forward_flops(16))

    def test_output_dim(self):
        assert MlpArch(input_dim=4, layers=(3, 7)).output_dim == 7


class TestEmbeddingTableConfig:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            EmbeddingTableConfig(name="t", hash_size=0)
        with pytest.raises(ValueError):
            EmbeddingTableConfig(name="t", hash_size=10, dim=0)

    def test_nbytes(self):
        t = EmbeddingTableConfig(name="t", hash_size=100, dim=16)
        assert t.nbytes == 100 * 16 * 4

    def test_lookup_bytes(self):
        t = EmbeddingTableConfig(name="t", hash_size=100, dim=16, avg_ids_per_row=2.0)
        assert t.lookup_bytes(10) == pytest.approx(10 * 2 * 16 * 4)


class TestPresets:
    def test_kaggle_matches_table2(self):
        m = kaggle_model()
        assert m.dense_arch.input_dim == 13
        assert m.dense_arch.layers == (512, 256)
        assert m.top_arch_layers == (1024, 1024, 512)
        assert m.num_tables == 26
        assert m.embedding_dim == 128

    def test_terabyte_matches_table2(self):
        m = terabyte_model()
        assert m.top_arch_layers == (1024, 1024, 512, 256)
        assert sum(t.hash_size for t in m.tables) == pytest.approx(177_900_000, rel=0.05)

    def test_interaction_dim(self):
        m = kaggle_model()
        f = 27
        assert m.interaction_dim == f * (f - 1) // 2 + 256

    def test_top_arch_uses_interaction_dim(self):
        m = kaggle_model()
        assert m.top_arch.input_dim == m.interaction_dim

    def test_table_lookup_by_name(self):
        m = kaggle_model()
        assert m.table("table:sparse_0").name == "table:sparse_0"
        with pytest.raises(KeyError):
            m.table("missing")

    def test_duplicate_table_names_rejected(self):
        t = EmbeddingTableConfig(name="t", hash_size=10)
        with pytest.raises(ValueError):
            DLRMConfig(
                name="m",
                dense_arch=MlpArch(13, (64,)),
                top_arch_layers=(64,),
                tables=(t, t),
            )

    def test_requires_tables(self):
        with pytest.raises(ValueError):
            DLRMConfig(name="m", dense_arch=MlpArch(13, (64,)), top_arch_layers=(64,), tables=())


class TestModelForPlan:
    def test_plan1_tables_cover_sparse_features(self):
        gs, schema = build_plan(1, rows=64)
        m = model_for_plan(gs, schema)
        assert m.num_tables == 26

    def test_plan2_adds_generated_tables(self):
        gs, schema = build_plan(2, rows=64)
        m = model_for_plan(gs, schema)
        # 52 raw sparse + 13 bucketized dense + 10 ngram tables.
        assert m.num_tables == 52 + 13 + 10

    def test_raw_features_use_schema_hash_sizes(self):
        gs, schema = build_plan(1, rows=64)
        m = model_for_plan(gs, schema)
        sizes = dict(zip(schema.sparse_names(), schema.hash_sizes()))
        assert m.table("table:sparse_0").hash_size == sizes["sparse_0"]
