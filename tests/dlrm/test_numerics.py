"""Numerical correctness tests for the trainable DLRM (gradient checks etc.)."""

import numpy as np
import pytest

from repro.dlrm.model import DLRMConfig, EmbeddingTableConfig, MlpArch
from repro.dlrm.numerics import (
    EmbeddingBag,
    Interaction,
    Mlp,
    MlpLayer,
    NumpyDLRM,
    bce_loss,
)
from repro.preprocessing.data import Batch, DenseColumn, SparseColumn


def tiny_config(num_tables=2, dim=4):
    return DLRMConfig(
        name="tiny",
        dense_arch=MlpArch(input_dim=3, layers=(8, 4)),
        top_arch_layers=(8, 4),
        tables=tuple(
            EmbeddingTableConfig(name=f"t{i}", hash_size=50, dim=dim) for i in range(num_tables)
        ),
        embedding_dim=dim,
    )


def tiny_batch(rows=6, seed=0):
    rng = np.random.default_rng(seed)
    dense = {f"d{i}": DenseColumn(f"d{i}", rng.random(rows)) for i in range(3)}
    sparse = {}
    for j in range(2):
        lengths = rng.integers(1, 4, rows)
        offsets = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = rng.integers(0, 50, int(offsets[-1]))
        sparse[f"s{j}"] = SparseColumn(f"s{j}", offsets, values, 50)
    return Batch(dense=dense, sparse=sparse)


def make_model(seed=0):
    return NumpyDLRM(
        tiny_config(),
        dense_inputs=["d0", "d1", "d2"],
        sparse_inputs={"t0": "s0", "t1": "s1"},
        seed=seed,
    )


class TestBceLoss:
    def test_perfect_confidence_low_loss(self):
        loss, _ = bce_loss(np.array([10.0, -10.0]), np.array([1.0, 0.0]))
        assert loss < 1e-3

    def test_gradient_sign(self):
        _, grad = bce_loss(np.array([0.0]), np.array([1.0]))
        assert grad[0] < 0  # push logit up for a positive label

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=5)
        labels = (rng.random(5) > 0.5).astype(float)
        _, grad = bce_loss(logits, labels)
        eps = 1e-6
        for i in range(5):
            bumped = logits.copy()
            bumped[i] += eps
            up, _ = bce_loss(bumped, labels)
            bumped[i] -= 2 * eps
            down, _ = bce_loss(bumped, labels)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), rel=1e-4, abs=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_loss(np.zeros(3), np.zeros(2))


class TestMlp:
    def test_forward_shapes(self):
        rng = np.random.default_rng(0)
        mlp = Mlp.init(4, (8, 2), rng)
        out = mlp.forward(rng.random((5, 4)))
        assert out.shape == (5, 2)

    def test_backward_before_forward_raises(self):
        rng = np.random.default_rng(0)
        layer = MlpLayer.init(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)), 0.1)

    def test_gradient_check_single_layer(self):
        """Weight gradient of a linear layer matches finite differences."""
        rng = np.random.default_rng(2)
        layer = MlpLayer.init(3, 2, rng, relu=False)
        x = rng.random((4, 3))
        target = rng.random((4, 2))
        bias_before = layer.bias.copy()

        def loss_at(weight):
            z = x @ weight + bias_before
            return 0.5 * np.sum((z - target) ** 2)

        z = layer.forward(x)
        grad_out = z - target
        w_before = layer.weight.copy()
        layer.backward(grad_out, lr=1.0)
        analytic_grad = w_before - layer.weight  # lr=1 -> update == gradient
        eps = 1e-6
        for idx in [(0, 0), (1, 1), (2, 0)]:
            w = w_before.copy()
            w[idx] += eps
            up = loss_at(w)
            w[idx] -= 2 * eps
            down = loss_at(w)
            fd = (up - down) / (2 * eps)
            assert analytic_grad[idx] == pytest.approx(fd, rel=1e-4)

    def test_sgd_reduces_regression_loss(self):
        rng = np.random.default_rng(3)
        mlp = Mlp.init(4, (16, 1), rng, final_relu=False)
        x = rng.random((64, 4))
        y = (x @ np.array([1.0, -2.0, 0.5, 3.0])).reshape(-1, 1)
        losses = []
        for _ in range(200):
            pred = mlp.forward(x)
            losses.append(float(np.mean((pred - y) ** 2)))
            mlp.backward((pred - y) / len(x), lr=0.1)
        assert losses[-1] < 0.2 * losses[0]


class TestEmbeddingBag:
    def test_pooled_lookup(self):
        rng = np.random.default_rng(0)
        bag = EmbeddingBag(10, 3, rng)
        col = SparseColumn("s", [0, 2, 3], [1, 4, 7], 10)
        out = bag.forward(col)
        np.testing.assert_allclose(out[0], bag.table[1] + bag.table[4])
        np.testing.assert_allclose(out[1], bag.table[7])

    def test_out_of_range_ids_rejected(self):
        bag = EmbeddingBag(10, 3, np.random.default_rng(0))
        col = SparseColumn("s", [0, 1], [99], 100)
        with pytest.raises(IndexError):
            bag.forward(col)

    def test_sparse_update_touches_only_looked_up_rows(self):
        rng = np.random.default_rng(1)
        bag = EmbeddingBag(10, 3, rng)
        before = bag.table.copy()
        col = SparseColumn("s", [0, 2], [3, 5], 10)
        bag.forward(col)
        bag.backward(np.ones((1, 3)), lr=0.1)
        changed = {i for i in range(10) if not np.allclose(bag.table[i], before[i])}
        assert changed == {3, 5}

    def test_empty_rows_ok(self):
        bag = EmbeddingBag(10, 3, np.random.default_rng(2))
        col = SparseColumn("s", [0, 0, 1], [2], 10)
        out = bag.forward(col)
        np.testing.assert_allclose(out[0], 0.0)


class TestInteraction:
    def test_output_width(self):
        inter = Interaction()
        rng = np.random.default_rng(0)
        dense = rng.random((5, 4))
        pooled = [rng.random((5, 4)) for _ in range(3)]
        out = inter.forward(dense, pooled)
        f = 4  # dense + 3 tables
        assert out.shape == (5, 4 + f * (f - 1) // 2)

    def test_gradient_check(self):
        """Interaction backward matches finite differences on the stack."""
        rng = np.random.default_rng(4)
        dense = rng.random((2, 3))
        pooled = [rng.random((2, 3))]
        inter = Interaction()
        out = inter.forward(dense, pooled)
        grad_out = rng.random(out.shape)
        grad_dense, grad_pooled = inter.backward(grad_out, dense_dim=3)
        eps = 1e-6

        def objective(d, p):
            return float(np.sum(Interaction().forward(d, [p]) * grad_out))

        for idx in [(0, 0), (1, 2)]:
            d = dense.copy()
            d[idx] += eps
            up = objective(d, pooled[0])
            d[idx] -= 2 * eps
            down = objective(d, pooled[0])
            assert grad_dense[idx] == pytest.approx((up - down) / (2 * eps), rel=1e-4)
            p = pooled[0].copy()
            p[idx] += eps
            up = objective(dense, p)
            p[idx] -= 2 * eps
            down = objective(dense, p)
            assert grad_pooled[0][idx] == pytest.approx((up - down) / (2 * eps), rel=1e-4)


class TestNumpyDLRM:
    def test_validates_input_counts(self):
        with pytest.raises(ValueError):
            NumpyDLRM(tiny_config(), dense_inputs=["d0"], sparse_inputs={"t0": "s0", "t1": "s1"})
        with pytest.raises(ValueError):
            NumpyDLRM(tiny_config(), dense_inputs=["d0", "d1", "d2"], sparse_inputs={"t0": "s0"})

    def test_forward_shape(self):
        model = make_model()
        logits = model.forward(tiny_batch())
        assert logits.shape == (6,)

    def test_deterministic_given_seed(self):
        a = make_model(seed=7).forward(tiny_batch(seed=3))
        b = make_model(seed=7).forward(tiny_batch(seed=3))
        np.testing.assert_allclose(a, b)

    def test_training_reduces_loss_on_learnable_signal(self):
        """The model learns a synthetic CTR rule from its own inputs."""
        rng = np.random.default_rng(5)
        model = make_model(seed=1)
        batches = []
        for i in range(8):
            b = tiny_batch(rows=64, seed=100 + i)
            # Label depends on a dense feature and a sparse id's parity.
            first_ids = np.array([b.sparse["s0"].row(r)[0] for r in range(64)])
            y = ((b.dense["d0"].values > 0.5) & (first_ids % 2 == 0)).astype(float)
            batches.append((b, y))
        first_pass = [model.train_step(b, y, lr=0.3) for b, y in batches]
        for _ in range(30):
            for b, y in batches:
                model.train_step(b, y, lr=0.3)
        final = [bce_loss(model.forward(b), y)[0] for b, y in batches]
        assert np.mean(final) < 0.55 * np.mean(first_pass)

    def test_predict_proba_in_unit_interval(self):
        p = make_model().predict_proba(tiny_batch())
        assert (p >= 0).all() and (p <= 1).all()

    def test_ids_beyond_capped_table_are_folded(self):
        config = tiny_config()
        model = NumpyDLRM(
            config,
            dense_inputs=["d0", "d1", "d2"],
            sparse_inputs={"t0": "s0", "t1": "s1"},
            table_size_cap=8,  # much smaller than the column's hash size
        )
        logits = model.forward(tiny_batch())
        assert np.isfinite(logits).all()
