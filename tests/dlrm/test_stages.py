"""Unit tests for the training-stage lowering."""

import pytest

from repro.dlrm.embedding import place_tables
from repro.dlrm.model import kaggle_model, terabyte_model
from repro.dlrm.stages import DEFAULT_CALIBRATION, build_iteration_stages

EXPECTED_STAGES = [
    "emb_lookup_fwd",
    "all_to_all_fwd",
    "mlp_bottom_fwd",
    "interaction_fwd",
    "mlp_top_fwd",
    "mlp_top_bwd",
    "interaction_bwd",
    "mlp_bottom_bwd",
    "all_to_all_bwd",
    "emb_update",
    "mlp_allreduce",
    "optimizer_step",
]


def stages_for(model, num_gpus=2, batch=2048, gpu_id=0):
    placement = place_tables(model, num_gpus)
    return build_iteration_stages(model, placement, batch, gpu_id)


class TestBuildIterationStages:
    def test_stage_order(self):
        names = [s.name for s in stages_for(kaggle_model())]
        assert names == EXPECTED_STAGES

    def test_rejects_bad_batch(self):
        m = kaggle_model()
        placement = place_tables(m, 2)
        with pytest.raises(ValueError):
            build_iteration_stages(m, placement, 0, 0)

    def test_rejects_bad_gpu_id(self):
        m = kaggle_model()
        placement = place_tables(m, 2)
        with pytest.raises(IndexError):
            build_iteration_stages(m, placement, 128, 5)

    def test_backward_costs_double_forward(self):
        stages = {s.name: s for s in stages_for(kaggle_model())}
        assert stages["mlp_top_bwd"].duration_us == pytest.approx(
            DEFAULT_CALIBRATION.backward_multiplier * stages["mlp_top_fwd"].duration_us
        )

    def test_mlp_stages_compute_bound_profiles(self):
        stages = {s.name: s for s in stages_for(kaggle_model())}
        mlp = stages["mlp_top_fwd"].utilization
        emb = stages["emb_lookup_fwd"].utilization
        # The Fig.-1a swing: MLP is SM-heavy, embedding is DRAM-heavy.
        assert mlp.sm > 0.8 and mlp.dram < 0.5
        assert emb.dram > 0.8 and emb.sm < 0.5

    def test_durations_scale_with_batch(self):
        small = stages_for(kaggle_model(), batch=1024)
        big = stages_for(kaggle_model(), batch=4096)
        small_mlp = next(s for s in small if s.name == "mlp_top_fwd")
        big_mlp = next(s for s in big if s.name == "mlp_top_fwd")
        assert big_mlp.duration_us == pytest.approx(4 * small_mlp.duration_us, rel=0.01)

    def test_single_gpu_has_no_comm(self):
        stages = {s.name: s for s in stages_for(kaggle_model(), num_gpus=1, gpu_id=0)}
        assert stages["all_to_all_fwd"].duration_us == 0.0
        assert stages["mlp_allreduce"].duration_us == 0.0

    def test_embedding_stage_tracks_local_shard(self):
        """A GPU holding more lookup traffic has a longer embedding stage."""
        m = terabyte_model()
        placement = place_tables(m, 4)
        loads = placement.lookup_bytes_per_gpu(m, 4 * 2048)
        durations = [
            next(
                s.duration_us
                for s in build_iteration_stages(m, placement, 2048, g)
                if s.name == "emb_lookup_fwd"
            )
            for g in range(4)
        ]
        ranked_load = sorted(range(4), key=lambda g: loads[g])
        ranked_time = sorted(range(4), key=lambda g: durations[g])
        assert ranked_load == ranked_time

    def test_all_durations_nonnegative(self):
        for s in stages_for(terabyte_model(), num_gpus=8, batch=4096):
            assert s.duration_us >= 0.0
