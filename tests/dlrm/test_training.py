"""Unit tests for the TrainingWorkload object."""

import pytest

from repro.dlrm.embedding import place_tables
from repro.dlrm.model import kaggle_model
from repro.dlrm.training import TrainingWorkload
from repro.gpusim.device import STREAM_POLICY
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import ResourceVector


@pytest.fixture
def workload():
    return TrainingWorkload(kaggle_model(), num_gpus=2, local_batch=1024)


class TestTrainingWorkload:
    def test_placement_auto_built(self, workload):
        assert workload.placement is not None
        assert workload.placement.num_gpus == 2

    def test_placement_mismatch_rejected(self):
        m = kaggle_model()
        with pytest.raises(ValueError):
            TrainingWorkload(m, num_gpus=4, local_batch=64, placement=place_tables(m, 2))

    def test_stage_cache(self, workload):
        assert workload.stages_for_gpu(0) is workload.stages_for_gpu(0)

    def test_global_batch(self, workload):
        assert workload.global_batch == 2048

    def test_ideal_iteration_positive(self, workload):
        assert workload.ideal_iteration_us() > 0

    def test_ideal_throughput(self, workload):
        it = workload.ideal_iteration_us()
        assert workload.ideal_throughput() == pytest.approx(2048 / (it * 1e-6))

    def test_simulate_empty_matches_ideal(self, workload):
        result = workload.simulate()
        assert result.iteration_time_us == pytest.approx(workload.ideal_iteration_us())

    def test_simulate_with_kernels_extends(self, workload):
        big = KernelDesc("big", 50_000.0, ResourceVector(0.9, 0.9))
        result = workload.simulate(assignments_per_gpu=[{0: [big]}, {}])
        assert result.iteration_time_us > workload.ideal_iteration_us()

    def test_policy_forwarded(self, workload):
        k = KernelDesc("k", 500.0, ResourceVector(0.3, 0.2))
        rap = workload.simulate(assignments_per_gpu=[{0: [k]}, {}])
        stream = workload.simulate(assignments_per_gpu=[{0: [k]}, {}], policy=STREAM_POLICY)
        assert stream.iteration_time_us >= rap.iteration_time_us

    def test_throughput_from_iteration(self, workload):
        assert workload.throughput_from_iteration(1e6) == pytest.approx(2048.0)
        assert workload.throughput_from_iteration(0.0) == 0.0

    def test_more_gpus_higher_ideal_throughput(self):
        m = kaggle_model()
        w2 = TrainingWorkload(m, num_gpus=2, local_batch=1024)
        w4 = TrainingWorkload(m, num_gpus=4, local_batch=1024)
        assert w4.ideal_throughput() > w2.ideal_throughput()
