"""Shape tests for every experiment harness.

These assert the *qualitative* claims of each paper table/figure on
reduced sweeps -- who wins, by roughly what factor, where crossovers fall
-- mirroring what EXPERIMENTS.md records for the full runs.
"""

import pytest

from repro.experiments import fig1, fig5, fig9, fig10, fig11, fig12, table5
from repro.experiments.reporting import format_kv, format_table, geomean
from repro.experiments.tables import run_table1, run_table2, run_table3


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_kv(self):
        out = format_kv({"alpha": 1, "b": 2.0})
        assert "alpha" in out

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestTables123:
    def test_table1_lists_all_operators(self):
        rows = run_table1()["rows"]
        assert len(rows) == 11
        assert {r["type"] for r in rows} == {"DN", "SN", "FG", "Other"}

    def test_table2_architectures(self):
        rows = run_table2()["rows"]
        kaggle = next(r for r in rows if "Kaggle" in r["dataset"])
        assert kaggle["dense_arch"] == "512-256"
        assert kaggle["top_arch"] == "1024-1024-512"
        terabyte = next(r for r in rows if "Terabyte" in r["dataset"])
        assert terabyte["top_arch"] == "1024-1024-512-256"

    def test_table3_matches_paper(self):
        rows = run_table3()["rows"]
        for r in rows:
            assert r["total_ops"] == r["paper_total_ops"]


class TestFig1:
    @pytest.fixture(scope="class")
    def results(self):
        return fig1.run(num_gpus=2, local_batch=2048)

    def test_fig1a_utilization_swings(self, results):
        """Fig. 1a: SM and DRAM utilization alternate across stages."""
        sm = results["fig1a"]["sm_utilization"]
        dram = results["fig1a"]["dram_utilization"]
        assert max(sm) > 0.8 and min(sm) < 0.3
        assert max(dram) > 0.8 and min(dram) < 0.4

    def test_fig1b_demand_grows_with_width(self, results):
        rows = results["fig1b"]
        sms = [r["sm_utilization"] for r in rows]
        assert sms == sorted(sms)
        assert rows[-1]["sm_utilization"] > 0.9

    def test_fig1c_latency_grows_with_width(self, results):
        rows = results["fig1c"]
        lats = [r["mlp_fwd_us"] for r in rows]
        assert lats == sorted(lats)
        assert rows[-1]["slowdown"] > 1.3

    def test_render(self, results):
        out = fig1.render(results)
        assert "Figure 1b" in out and "Figure 1c" in out


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self):
        return fig5.run(num_gpus=2, local_batch=2048)

    def test_consistent_trend_across_ops(self, results):
        """Fig. 5b: standalone latency orders overlapping latency across
        op types as one consistent trend."""
        assert results["latency_rank_correlation"] > 0.7

    def test_warp_misalignment(self, results):
        """Fig. 5c: at comparable warp counts, different ops have very
        different overlapping latencies."""
        rows = results["rows"]
        by_op = {}
        for r in rows:
            by_op.setdefault(r["op"], []).append(r)
        ngram = {r["rows"]: r["standalone_us"] for r in by_op["Ngram"]}
        logit = {r["rows"]: r["standalone_us"] for r in by_op["Logit"]}
        big = 1_048_576
        assert ngram[big] > 2 * logit[big]


class TestFig9:
    @pytest.fixture(scope="class")
    def results(self):
        return fig9.run(gpu_counts=(2, 4), plan_ids=(1,), batch_sizes=(4096,))

    def test_rap_wins_everywhere(self, results):
        for r in results["rows"]:
            assert r["rap"] > r["torcharrow"]
            assert r["rap"] > r["cuda_stream"]
            assert r["rap"] > r["mps"]

    def test_rap_scales_with_gpus(self, results):
        rows = {r["gpus"]: r for r in results["rows"]}
        assert rows[4]["rap"] > 1.7 * rows[2]["rap"]

    def test_torcharrow_scales_poorly(self, results):
        rows = {r["gpus"]: r for r in results["rows"]}
        assert rows[4]["torcharrow"] < 1.7 * rows[2]["torcharrow"]

    def test_summary_speedups(self, results):
        s = results["summary"]
        assert s["rap_over_torcharrow"] > 3.0
        assert s["rap_over_mps"] > 1.1
        assert 0.9 <= s["rap_vs_ideal"] <= 1.001


class TestFig10:
    @pytest.fixture(scope="class")
    def results(self):
        return fig10.run(plan_ids=(2,), num_gpus=4, batch=4096)

    def test_breakdown_ordering(self, results):
        for r in results["rows"]:
            assert r["sequential"] < r["mps"] < r["rap"] <= r["ideal"] * 1.001
            assert r["rap_wo_mapping"] <= r["rap"] * 1.001
            assert r["rap_wo_fusion"] <= r["rap"] * 1.001

    def test_ablations_beat_mps(self, results):
        s = results["summary"]
        assert s["rap_wo_mapping_over_mps"] > 1.0
        assert s["rap_wo_fusion_over_mps"] > 1.0

    def test_rap_near_ideal(self, results):
        assert results["summary"]["rap_vs_ideal"] > 0.9


class TestFig11:
    @pytest.fixture(scope="class")
    def results(self):
        return fig11.run(workload_sizes=tuple(range(0, 81, 8)), num_gpus=2, local_batch=4096)

    def test_turning_point_ordering(self, results):
        """Baseline turns earliest, RAP latest (Fig. 11's core claim)."""
        tp = results["turning_points"]
        base = tp["baseline"] if tp["baseline"] is not None else 10**9
        fusion = tp["fusion"] if tp["fusion"] is not None else 10**9
        rap = tp["rap"] if tp["rap"] is not None else 10**9
        assert base <= fusion <= rap
        assert base < rap

    def test_latency_monotone_per_setting(self, results):
        for setting in ("baseline", "fusion", "rap"):
            lats = [r["latency_us"] for r in results["rows"] if r["setting"] == setting]
            for a, b in zip(lats, lats[1:]):
                assert b >= a - 1.0

    def test_table4_rap_highest_utilization(self, results):
        """Table 4: RAP keeps the GPU busier at its turning point."""
        t4 = results["table4"]
        assert t4["rap"]["gpu_utilization"] > t4["baseline"]["gpu_utilization"]


class TestFig12:
    @pytest.fixture(scope="class")
    def results(self):
        return fig12.run(num_gpus=4, local_batch=4096)

    def test_mapping_ordering(self, results):
        s = results["summary"]
        assert s["dp_over_rap"] > 1.2
        assert s["dl_over_rap"] > 1.2

    def test_dp_pays_comm_dl_does_not(self, results):
        rows = {r["mapping"]: r for r in results["rows"]}
        assert rows["data_parallel"]["exposed_comm_us"] > 0
        assert rows["data_locality"]["exposed_comm_us"] == 0


class TestTable5:
    def test_accuracy_band(self):
        results = table5.run(num_samples=1500, seed=3)
        for family, acc in results["accuracy"].items():
            assert acc >= 0.84, f"{family}: {acc:.3f}"

    def test_render_mentions_paper(self):
        results = table5.run(num_samples=800, seed=4)
        out = table5.render(results)
        assert "paper acc" in out
