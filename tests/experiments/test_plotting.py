"""Tests for the terminal plotting helpers."""

import pytest

from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_empty(self):
        assert ascii_line_chart({}) == "(no data)"

    def test_rejects_tiny_dimensions(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(0, 0)]}, width=5)
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(0, 0)]}, height=2)

    def test_contains_markers_and_legend(self):
        out = ascii_line_chart({"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]})
        assert "*" in out and "o" in out
        assert "legend: * up  o down" in out

    def test_axis_labels(self):
        out = ascii_line_chart({"a": [(0.0, 10.0), (5.0, 50.0)]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "50" in out and "10" in out
        assert "0" in out and "5" in out

    def test_monotone_series_renders_monotone(self):
        """The highest y lands on the top row, the lowest on the bottom."""
        out = ascii_line_chart({"a": [(0, 0), (10, 100)]}, width=20, height=6)
        rows = [line for line in out.splitlines() if "|" in line]
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_constant_series_no_crash(self):
        out = ascii_line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in out

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [(0, i)] for i in range(10)}
        out = ascii_line_chart(series)
        assert "legend" in out


class TestBarChart:
    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_bars_scale_to_peak(self):
        out = ascii_bar_chart({"small": 1.0, "big": 10.0}, width=10)
        lines = {line.split("|")[0].strip(): line for line in out.splitlines()}
        assert lines["big"].count("#") == 10
        assert lines["small"].count("#") == 1

    def test_zero_values(self):
        out = ascii_bar_chart({"zero": 0.0, "one": 1.0})
        assert "zero" in out

    def test_all_zero(self):
        out = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out and "b" in out

    def test_title(self):
        out = ascii_bar_chart({"a": 1.0}, title="My chart")
        assert out.splitlines()[0] == "My chart"


class TestSensitivity:
    def test_small_sweep_robust(self):
        from repro.experiments import sensitivity

        results = sensitivity.run(plan_id=1, num_gpus=2)
        assert results["robust"]
        sweeps = {r["sweep"] for r in results["rows"]}
        assert sweeps == set(sensitivity.SWEEPS)

    def test_render(self):
        from repro.experiments import sensitivity

        results = sensitivity.run(plan_id=0, num_gpus=2)
        out = sensitivity.render(results)
        assert "Sensitivity" in out
        assert "robust" in out
