"""Admission audit: each invariant family rejects what it should."""

from repro.forge import ScenarioForge, Scenario, WorkloadSpec, audit_scenario
from repro.forge.scenario import ArrivalCurve
from repro.runtime import CPU_POOL_CRASH, GPU_LOST, KERNEL_FAILURE, PLAN_DRIFT, FaultEvent, FaultSpec
from repro.telemetry import LatencyDrift


def base_scenario(**overrides) -> Scenario:
    fields = dict(
        name="audit-case",
        seed=1,
        workload=WorkloadSpec(plan_seed=1, num_dense=2, num_sparse=3, batch=256),
        fleet=("a100", "a100", "a100"),
        iterations=8,
    )
    fields.update(overrides)
    return Scenario(**fields)


def findings_for(scenario, check=None):
    result = audit_scenario(scenario)
    if check is None:
        return result.findings
    return [f for f in result.findings if f.check == check]


class TestFeasibility:
    def test_clean_scenario_passes(self):
        assert audit_scenario(base_scenario()).ok

    def test_unknown_profile_rejected(self):
        bad = base_scenario(fleet=("a100", "tpu-v9"))
        found = findings_for(bad, "feasibility")
        assert found and "tpu-v9" in found[0].detail

    def test_out_of_run_event_rejected(self):
        bad = base_scenario(
            fault_schedule=(FaultEvent(kind=CPU_POOL_CRASH, iteration=50),)
        )
        assert any("outside" in f.detail for f in findings_for(bad, "feasibility"))

    def test_kernel_kind_cannot_be_scheduled(self):
        bad = base_scenario(
            fault_schedule=(
                FaultEvent(kind=KERNEL_FAILURE, iteration=2, gpu=0, kernel="k"),
            )
        )
        assert any("cannot be scheduled" in f.detail for f in findings_for(bad, "feasibility"))

    def test_killing_the_whole_fleet_rejected(self):
        bad = base_scenario(
            fault_schedule=tuple(
                FaultEvent(kind=GPU_LOST, iteration=2 + i, gpu=0, recover_after=-1)
                for i in range(3)
            )
        )
        assert any("kills all" in f.detail for f in findings_for(bad, "feasibility"))

    def test_phantom_gpu_victim_rejected(self):
        bad = base_scenario(
            fault_schedule=(FaultEvent(kind=GPU_LOST, iteration=2, gpu=7, recover_after=-1),)
        )
        assert any("does not exist" in f.detail for f in findings_for(bad, "feasibility"))

    def test_post_compaction_indexing_is_understood(self):
        # Original pair (0, 2) on a 3-GPU fleet: second victim is index 1
        # after compaction -- legal even though only indices 0..1 survive.
        good = base_scenario(
            fault_schedule=(
                FaultEvent(kind=GPU_LOST, iteration=3, gpu=0, recover_after=-1),
                FaultEvent(kind=GPU_LOST, iteration=3, gpu=1, recover_after=-1),
            )
        )
        assert not findings_for(good, "feasibility")

    def test_unknown_drift_op_rejected(self):
        bad = base_scenario(drift_schedule=(LatencyDrift("Teleport", 1.5),))
        assert any("Teleport" in f.detail for f in findings_for(bad, "feasibility"))

    def test_late_drift_rejected(self):
        bad = base_scenario(
            drift_schedule=(LatencyDrift("SigridHash", 1.5, start_iteration=99),)
        )
        assert any("after the run ends" in f.detail for f in findings_for(bad, "feasibility"))


class TestConservation:
    def test_runaway_scale_rejected(self):
        bad = base_scenario(
            fault_schedule=tuple(
                FaultEvent(kind=PLAN_DRIFT, iteration=i, magnitude=2.0, recover_after=0)
                for i in range(1, 6)
            )
        )
        assert any("escapes" in f.detail for f in findings_for(bad, "conservation"))

    def test_spike_with_release_passes(self):
        good = base_scenario(
            fault_schedule=(
                FaultEvent(kind=PLAN_DRIFT, iteration=2, magnitude=2.0, recover_after=0),
                FaultEvent(kind=PLAN_DRIFT, iteration=4, magnitude=0.5, recover_after=0),
            )
        )
        assert not findings_for(good, "conservation")

    def test_pathological_background_rate_rejected(self):
        bad = base_scenario(fault_specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.9),))
        assert any("noise" in f.detail for f in findings_for(bad, "conservation"))

    def test_arrival_curve_counts_toward_scale(self):
        good = base_scenario(arrival=ArrivalCurve(shape="diurnal", amplitude=0.4, period=4))
        assert not findings_for(good, "conservation")


class TestReplayability:
    def test_forge_replay_checked_when_forge_given(self):
        forge = ScenarioForge()
        scenario = forge.generate(5)
        assert audit_scenario(scenario, forge).ok
        # The same scenario under a different name no longer replays from
        # its seed -- the audit must notice.
        renamed = scenario.with_overrides(name="not-what-the-seed-makes")
        bad = [
            f
            for f in audit_scenario(renamed, forge).findings
            if f.check == "replayability"
        ]
        assert bad and "canonical bytes" in bad[0].detail
