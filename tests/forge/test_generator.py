"""Forge generator: determinism, coverage, and universal admissibility."""

from repro.forge import ForgeConfig, ScenarioForge, audit_scenario
from repro.forge.scenario import SCHEDULABLE_FAULT_KINDS

SAMPLE_SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_canonical_bytes(self):
        forge = ScenarioForge()
        for seed in (0, 1, 17, 123456):
            assert forge.generate(seed).canonical_json() == forge.generate(
                seed
            ).canonical_json()

    def test_fresh_forge_instances_agree(self):
        assert (
            ScenarioForge().generate(99).canonical_json()
            == ScenarioForge().generate(99).canonical_json()
        )

    def test_different_seeds_differ(self):
        forge = ScenarioForge()
        assert forge.generate(0).canonical_json() != forge.generate(1).canonical_json()


class TestCoverage:
    """Over a modest seed range, every dimension must actually appear."""

    def test_dimensions_all_sampled(self):
        forge = ScenarioForge()
        scenarios = [forge.generate(seed) for seed in SAMPLE_SEEDS]
        tags = {tag for s in scenarios for tag in s.tags}
        assert "hetero-fleet" in tags
        assert {"diurnal-arrival", "bursty-arrival"} & tags
        assert {"skew-shift", "vocab-growth"} & tags
        assert {"gpu-pair-loss", "pool-cascade", "drift-storm"} & tags
        assert "retry-jitter" in tags and "retry-budget" in tags
        assert any(s.heterogeneous for s in scenarios)
        assert any(not s.heterogeneous for s in scenarios)

    def test_scheduled_kinds_stay_schedulable(self):
        forge = ScenarioForge()
        for seed in SAMPLE_SEEDS:
            for event in forge.generate(seed).fault_schedule:
                assert event.kind in SCHEDULABLE_FAULT_KINDS

    def test_pair_loss_requires_a_survivor(self):
        forge = ScenarioForge()
        for seed in SAMPLE_SEEDS:
            scenario = forge.generate(seed)
            if "gpu-pair-loss" in scenario.tags:
                assert scenario.num_gpus >= 3


class TestAdmission:
    def test_every_generated_scenario_passes_the_audit(self):
        forge = ScenarioForge()
        for seed in SAMPLE_SEEDS:
            result = audit_scenario(forge.generate(seed), forge)
            assert result.ok, (seed, [f.to_dict() for f in result.findings])

    def test_config_bounds_are_respected(self):
        config = ForgeConfig(min_gpus=2, max_gpus=3, min_iterations=8, max_iterations=9)
        forge = ScenarioForge(config)
        for seed in range(20):
            scenario = forge.generate(seed)
            assert 2 <= scenario.num_gpus <= 3
            assert 8 <= scenario.iterations <= 9
