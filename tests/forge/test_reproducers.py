"""Forge-found scenarios pinned as regression tests.

Each class replays one scenario the sweep surfaced as interesting --
a real bug, or a worst-case stressor -- as a deterministic test. The
scenarios are addressed by forge seed (the generator is pinned to
``rap-forge:{seed}`` strings, so these reproduce bit-identically on any
machine) and double-checked by digest so a generator change that would
silently swap the scenario out from under the test fails loudly.
"""

import pytest

from repro.forge import ScenarioForge, audit_scenario, run_scenario, scenario_digest


def pinned(seed: int, digest: str):
    scenario = ScenarioForge().generate(seed)
    assert scenario_digest(scenario) == digest, (
        f"forge seed {seed} no longer generates the pinned scenario; "
        "re-pin the digest (and re-verify the regression still reproduces)"
    )
    assert audit_scenario(scenario).ok
    return scenario


class TestSeed6FusedMemberSerialization:
    """Seed 6 caught ``kernel_to_dict`` dropping fused member descriptors.

    A hetero-fleet run with background fused-OOM faults checkpointed a plan
    whose fused kernels lost their ``member_kernels`` on serialization; the
    restored run then recovered a fused OOM by *re-sharding* instead of
    *de-fusing*, diverging from the uninterrupted run. The fix carries the
    members through the plan artifact (see ``core/serialization.py``).
    """

    DIGEST = "6df1649f6ec6c1bc23badba928197638127c4d2e0708363e7958786f6d852e66"

    def test_resume_is_bit_identical(self):
        scenario = pinned(6, self.DIGEST)
        row = run_scenario(scenario, check_resume=True)
        assert row["status"] == "ok"
        assert row["resume"] == {"checked": True, "identical": True}

    def test_the_scenario_still_exercises_the_fused_oom_path(self):
        # The regression is only guarded while the scenario keeps taking
        # the shard_retry rung (the de-fuse/re-shard fork of the ladder).
        scenario = pinned(6, self.DIGEST)
        row = run_scenario(scenario)
        assert "shard_retry" in row["ladder"]["rungs"]


class TestSeed34RecoveryDominatedStorm:
    """Seed 34: pair loss + skew shift + vocab growth under retry jitter.

    The sweep's worst recovery fraction (~99.8% of wall time in recovery
    and backoff): a same-host GPU pair dies mid-run while drift inflates
    the surviving kernels. Pinned to guard that the runtime still finishes
    the run and keeps its accounting consistent at the extreme.
    """

    def test_completes_despite_recovery_domination(self):
        scenario = ScenarioForge().generate(34)
        assert "gpu-pair-loss" in scenario.tags
        row = run_scenario(scenario)
        assert row["status"] == "ok"
        assert row["completed"]
        assert row["membership_changes"] >= 2
        # Recovery dominates but never exceeds the run itself.
        assert 0.9 <= row["recovery"]["fraction"] < 1.0

    def test_replays_identically(self):
        a = run_scenario(ScenarioForge().generate(34))
        b = run_scenario(ScenarioForge().generate(34))
        assert a == b


class TestSeed0FullLadderDescent:
    """Seed 0: pool cascade + bursty arrival + dual drift on a mixed fleet.

    The first seed of the default distribution already rides the ladder
    to the bottom: correlated pool crashes and a drift storm of replans
    push work all the way to cpu_fallback. Pinned as the canonical
    everything-at-once scenario.
    """

    def test_reaches_cpu_fallback_and_survives(self):
        scenario = ScenarioForge().generate(0)
        assert {"pool-cascade", "hetero-fleet", "bursty-arrival"} <= set(scenario.tags)
        row = run_scenario(scenario)
        assert row["status"] == "ok"
        assert row["ladder"]["deepest_rung"] == "cpu_fallback"
        assert row["replans"] >= 5

    def test_plan_quality_holds_at_the_bottom_of_the_ladder(self):
        row = run_scenario(ScenarioForge().generate(0))
        assert row["plan_quality"]["ratio"] == pytest.approx(1.0, abs=0.5)
