"""Scenario schema: serialization, canonical bytes, and arrival lowering."""

import json

import pytest

from repro.forge import ArrivalCurve, Scenario, WorkloadSpec, scenario_digest
from repro.runtime import CPU_POOL_CRASH, GPU_LOST, PLAN_DRIFT, FaultEvent, FaultSpec
from repro.telemetry import LatencyDrift


def sample_scenario() -> Scenario:
    return Scenario(
        name="pinned-sample",
        seed=7,
        workload=WorkloadSpec(plan_seed=3, num_dense=2, num_sparse=3, batch=256),
        fleet=("a100", "h100", "a100"),
        iterations=10,
        fault_specs=(FaultSpec(kind="kernel_failure", rate=0.2),),
        fault_schedule=(
            FaultEvent(kind=GPU_LOST, iteration=4, gpu=1, recover_after=-1),
            FaultEvent(kind=CPU_POOL_CRASH, iteration=6, magnitude=2.0),
        ),
        drift_schedule=(LatencyDrift("SigridHash", 1.5, start_iteration=2),),
        arrival=ArrivalCurve(shape="diurnal", amplitude=0.3, period=5),
        retry_jitter=0.25,
        retry_budget=4,
        tags=("pinned",),
    )


class TestSerialization:
    def test_round_trip_is_digest_identical(self):
        scenario = sample_scenario()
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert scenario_digest(restored) == scenario_digest(scenario)

    def test_canonical_json_is_stable_bytes(self):
        a = sample_scenario().canonical_json()
        b = sample_scenario().canonical_json()
        assert a == b
        # Canonical form: sorted keys, no whitespace.
        assert json.loads(a)["name"] == "pinned-sample"
        assert ": " not in a and ", " not in a

    def test_json_round_trip_through_text(self):
        scenario = sample_scenario()
        text = json.dumps(scenario.to_dict())
        assert Scenario.from_dict(json.loads(text)) == scenario

    def test_newer_format_version_rejected(self):
        data = sample_scenario().to_dict()
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format_version"):
            Scenario.from_dict(data)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one GPU"):
            Scenario(name="x", seed=0, workload=WorkloadSpec(), fleet=(), iterations=5)
        with pytest.raises(ValueError, match="iterations"):
            Scenario(
                name="x", seed=0, workload=WorkloadSpec(), fleet=("a100",), iterations=0
            )


class TestMaterialization:
    def test_build_workload_threads_fleet(self):
        scenario = sample_scenario()
        graphs, workload = scenario.build_workload()
        assert workload.num_gpus == 3
        assert workload.heterogeneous
        assert workload.fleet_profile == ("A100-40GB", "H100-80GB", "A100-40GB")
        assert graphs.rows == scenario.workload.batch

    def test_build_injector_carries_schedule(self):
        scenario = sample_scenario()
        injector = scenario.build_injector()
        assert injector.seed == scenario.seed
        kinds = [e.kind for e in injector.schedule]
        assert GPU_LOST in kinds and CPU_POOL_CRASH in kinds
        # The diurnal arrival curve lowered into plan-drift steps too.
        assert PLAN_DRIFT in kinds

    def test_retry_policy_knobs(self):
        policy = sample_scenario().build_retry_policy()
        assert policy.jitter_fraction == 0.25
        assert policy.retry_budget_per_epoch == 4


class TestArrivalCurve:
    def test_steady_compiles_to_nothing(self):
        assert ArrivalCurve().compile(12) == ()

    def test_diurnal_steps_telescope(self):
        curve = ArrivalCurve(shape="diurnal", amplitude=0.4, period=6)
        events = curve.compile(12)
        assert events and all(e.kind == PLAN_DRIFT for e in events)
        product = 1.0
        for event in events:
            product *= event.magnitude
        # The cumulative scale is exactly intensity(last)/intensity(0).
        assert product == pytest.approx(curve.intensity(11) / curve.intensity(0))

    def test_burst_spikes_and_releases(self):
        curve = ArrivalCurve(shape="bursty", amplitude=0.5, burst_at=3, burst_length=2)
        events = curve.compile(10)
        assert [e.iteration for e in events] == [3, 5]
        assert events[0].magnitude == pytest.approx(1.5)
        assert events[1].magnitude == pytest.approx(1 / 1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ArrivalCurve(shape="square")
        with pytest.raises(ValueError, match="amplitude"):
            ArrivalCurve(shape="diurnal", amplitude=1.0)


class TestDelaySchedule:
    def test_steady_curve_is_constant(self):
        assert ArrivalCurve().delay_schedule(4, 0.01) == (0.01,) * 4

    def test_burst_compresses_delays_inside_window(self):
        curve = ArrivalCurve(shape="bursty", amplitude=0.5, burst_at=2, burst_length=2)
        delays = curve.delay_schedule(6, 0.03)
        assert len(delays) == 6
        # Inside the burst intensity is 1.5x, so inter-batch gaps shrink.
        assert delays[2] == pytest.approx(0.03 / 1.5)
        assert delays[3] == pytest.approx(0.03 / 1.5)
        assert delays[0] == delays[5] == pytest.approx(0.03)

    def test_feeds_a_paced_source(self):
        from repro.ingest import PacedSource, source

        curve = ArrivalCurve(shape="bursty", amplitude=0.5, burst_at=1, burst_length=1)
        inner = source("synthetic://kaggle?batch=16&batches=3")
        paced = PacedSource(inner, curve.delay_schedule(3, 0.02))
        assert paced.delay_s(1) < paced.delay_s(0)
        assert paced.batch(2).size == 16

    def test_validation(self):
        with pytest.raises(ValueError, match="num_batches"):
            ArrivalCurve().delay_schedule(0, 0.01)
        with pytest.raises(ValueError, match="non-negative"):
            ArrivalCurve().delay_schedule(3, -0.5)
