"""Sweep harness: scoring, crash isolation, and the gated scorecard."""

import json
import os
import time

import pytest

from repro.forge import (
    GATE_CRITERIA,
    ScenarioForge,
    SweepConfig,
    build_scorecard,
    run_scenario,
    sweep,
    write_scorecard,
)
import importlib

# `repro.forge.sweep` the attribute is the sweep *function* (re-exported by
# the package); fetch the module itself for monkeypatching.
sweep_mod = importlib.import_module("repro.forge.sweep")


@pytest.fixture(scope="module")
def one_row():
    return run_scenario(ScenarioForge().generate(1))


class TestRunScenario:
    def test_row_schema(self, one_row):
        row = one_row
        assert row["status"] == "ok"
        assert row["completed"]
        assert row["plan_quality"]["ratio"] >= 1.0
        assert row["plan_quality"]["oracle_strategy"] in (
            "rap",
            "data_parallel",
            "data_locality",
        )
        assert 0.0 <= row["recovery"]["fraction"]
        assert 0 <= row["ladder"]["max_depth"] <= 4
        assert row["resume"] == {"checked": False, "identical": None}

    def test_row_is_json_serializable(self, one_row):
        assert json.loads(json.dumps(one_row)) == one_row

    def test_resume_check_replays_bit_identically(self):
        row = run_scenario(ScenarioForge().generate(3), check_resume=True)
        assert row["resume"] == {"checked": True, "identical": True}


class TestIsolation:
    def test_inline_failure_becomes_an_error_row(self, monkeypatch):
        scenario = ScenarioForge().generate(2)

        def boom(*args, **kwargs):
            raise RuntimeError("planner exploded")

        monkeypatch.setattr(sweep_mod, "run_scenario", boom)
        row = sweep_mod._run_inline(scenario, check_resume=False)
        assert row["status"] == "error"
        assert "planner exploded" in row["error"]

    def test_child_crash_becomes_a_crash_row(self, monkeypatch, tmp_path):
        scenario = ScenarioForge().generate(2)

        def die(*args, **kwargs):
            os._exit(17)  # a hard death no try/except can catch

        monkeypatch.setattr(sweep_mod, "run_scenario", die)
        row = sweep_mod._run_isolated(scenario, False, timeout_s=60.0, workdir=tmp_path)
        assert row["status"] == "crash"
        assert "17" in row["error"]

    def test_hung_child_times_out(self, monkeypatch, tmp_path):
        scenario = ScenarioForge().generate(2)

        def hang(*args, **kwargs):
            time.sleep(300)

        monkeypatch.setattr(sweep_mod, "run_scenario", hang)
        start = time.monotonic()
        row = sweep_mod._run_isolated(scenario, False, timeout_s=1.0, workdir=tmp_path)
        assert row["status"] == "timeout"
        assert time.monotonic() - start < 30


class TestSweep:
    def test_small_inline_sweep_end_to_end(self, tmp_path):
        config = SweepConfig(seeds=3, start_seed=1, jobs=0, resume_check_every=100)
        scorecard = sweep(config)
        assert scorecard["admission"]["generated"] == 3
        assert scorecard["admission"]["admitted"] + scorecard["admission"]["rejected"] == 3
        assert len(scorecard["scenarios"]) == scorecard["admission"]["admitted"]
        assert set(scorecard["dimensions"]) == set(GATE_CRITERIA)
        path = write_scorecard(scorecard, tmp_path / "BENCH_scenarios.json")
        assert json.loads(path.read_text())["format_version"] == scorecard["format_version"]


class TestScorecard:
    def test_gates_pass_and_fail(self):
        good = {
            "status": "ok",
            "completed": True,
            "heterogeneous": False,
            "tags": [],
            "plan_quality": {"ratio": 1.0},
            "recovery": {"fraction": 0.1},
            "ladder": {"deepest_rung": "co_run"},
            "calibration": {"drifting": True, "improved": True},
            "resume": {"checked": True, "identical": True},
        }
        card = build_scorecard([good])
        assert card["pass"], card["dimensions"]

        bad = dict(good)
        bad["resume"] = {"checked": True, "identical": False}
        card = build_scorecard([good, bad])
        assert not card["pass"]
        assert not card["dimensions"]["resume_integrity"]["pass"]

    def test_statuses_and_rejections_are_counted(self):
        rows = [
            {"status": "ok", "completed": True, "tags": []},
            {"status": "timeout", "completed": False, "tags": []},
            {"status": "error", "completed": False, "tags": []},
        ]
        card = build_scorecard(rows, rejected=[{"scenario": "forge-00009", "ok": False}])
        assert card["statuses"] == {"ok": 1, "timeout": 1, "error": 1}
        assert card["admission"]["rejected"] == 1
        assert not card["dimensions"]["completion"]["pass"]
