"""Triage: shrinking a failing scenario to a 1-minimal reproducer."""

from repro.forge import ScenarioForge, audit_scenario
from repro.forge.triage import minimize_scenario
from repro.runtime import GPU_LOST


def find_scenario_with(forge, tag):
    for seed in range(200):
        scenario = forge.generate(seed)
        if tag in scenario.tags:
            return scenario
    raise AssertionError(f"no scenario with tag {tag} in 200 seeds")


class TestMinimize:
    def test_strips_everything_irrelevant_to_the_failure(self):
        forge = ScenarioForge()
        scenario = find_scenario_with(forge, "gpu-pair-loss")
        # Synthetic oracle: the "bug" reproduces iff any gpu_lost is still
        # scheduled. Everything else should be stripped.
        failing = lambda s: any(e.kind == GPU_LOST for e in s.fault_schedule)  # noqa: E731
        minimal = minimize_scenario(scenario, failing)

        assert any(e.kind == GPU_LOST for e in minimal.fault_schedule)
        assert minimal.fault_specs == ()
        assert minimal.drift_schedule == ()
        assert minimal.arrival.shape == "steady"
        assert minimal.retry_jitter == 0.0 and minimal.retry_budget == 0
        assert not minimal.heterogeneous
        assert minimal.iterations <= scenario.iterations
        assert minimal.name == f"{scenario.name}-min"

    def test_minimal_reproducer_still_passes_the_audit(self):
        forge = ScenarioForge()
        scenario = find_scenario_with(forge, "pool-cascade")
        failing = lambda s: bool(s.fault_schedule)  # noqa: E731
        minimal = minimize_scenario(scenario, failing)
        assert audit_scenario(minimal).ok

    def test_non_reproducing_scenario_is_returned_unchanged(self):
        forge = ScenarioForge()
        scenario = forge.generate(0)
        minimal = minimize_scenario(scenario, lambda s: False)
        assert minimal == scenario

    def test_oracle_budget_is_respected(self):
        forge = ScenarioForge()
        scenario = find_scenario_with(forge, "gpu-pair-loss")
        calls = []

        def counting(s):
            calls.append(1)
            return True

        minimize_scenario(scenario, counting, max_runs=5)
        assert len(calls) <= 5
