"""Unit tests for the multi-GPU cluster composition."""

import pytest

from repro.gpusim.cluster import MultiGpuCluster
from repro.gpusim.device import StageProfile
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import ResourceVector


def stages(duration=1000.0):
    return [
        StageProfile("mlp", duration, ResourceVector(0.85, 0.3)),
        StageProfile("emb", duration / 2, ResourceVector(0.2, 0.9)),
    ]


class TestMultiGpuCluster:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            MultiGpuCluster(0)

    def test_iteration_is_max_over_gpus(self):
        cluster = MultiGpuCluster(2)
        result = cluster.simulate_iteration([stages(1000.0), stages(2000.0)])
        assert result.iteration_time_us == pytest.approx(3000.0)
        assert result.slowest_gpu == 1

    def test_requires_matching_pipeline_count(self):
        cluster = MultiGpuCluster(4)
        with pytest.raises(ValueError):
            cluster.simulate_iteration([stages()])

    def test_requires_matching_assignment_count(self):
        cluster = MultiGpuCluster(2)
        with pytest.raises(ValueError):
            cluster.simulate_iteration([stages(), stages()], assignments_per_gpu=[{}])

    def test_input_comm_adds_to_critical_path(self):
        cluster = MultiGpuCluster(2)
        free = cluster.simulate_iteration([stages(), stages()])
        with_comm = cluster.simulate_iteration(
            [stages(), stages()], input_comm_bytes=100_000_000
        )
        assert with_comm.iteration_time_us > free.iteration_time_us
        assert with_comm.input_comm_us > 0

    def test_per_gpu_results_exposed(self):
        cluster = MultiGpuCluster(3)
        result = cluster.simulate_iteration([stages(), stages(), stages()])
        assert len(result.per_gpu) == 3

    def test_trailing_kernels_expose_latency(self):
        cluster = MultiGpuCluster(2)
        trailing = [KernelDesc("t", 500.0, ResourceVector(0.5, 0.5))]
        result = cluster.simulate_iteration(
            [stages(), stages()], trailing_per_gpu=[trailing, []]
        )
        assert result.max_exposed_preprocessing_us == pytest.approx(500.0)

    def test_throughput_helper(self):
        cluster = MultiGpuCluster(1)
        result = cluster.simulate_iteration([stages()])
        tput = result.throughput_samples_per_s(4096)
        assert tput == pytest.approx(4096 / (result.iteration_time_us * 1e-6))

    def test_empty_cluster_result_defaults(self):
        cluster = MultiGpuCluster(1)
        result = cluster.simulate_iteration([stages()])
        assert result.max_exposed_preprocessing_us == 0.0
