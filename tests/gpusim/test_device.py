"""Unit tests for the single-GPU co-running simulator: the load-bearing physics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import (
    CoRunPolicy,
    GpuDevice,
    MPS_POLICY,
    RAP_POLICY,
    STREAM_POLICY,
    StageProfile,
)
from repro.gpusim.kernel import KernelDesc
from repro.gpusim.resources import A100_SPEC, ResourceVector


def kernel(duration, sm, dram, name="k", tag="FillNull"):
    return KernelDesc(name, duration, ResourceVector(sm, dram), num_warps=64, tag=tag)


class TestStageProfile:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            StageProfile("s", -1.0, ResourceVector(0.1, 0.1))

    def test_leftover(self):
        s = StageProfile("s", 10.0, ResourceVector(0.3, 0.8))
        assert s.leftover().sm == pytest.approx(0.7)
        assert s.leftover().dram == pytest.approx(0.2)


class TestStandaloneExecution:
    def test_training_standalone_time_is_sum(self, device, mlp_stage, emb_stage):
        result = device.run_training_standalone([mlp_stage, emb_stage])
        assert result.total_time_us == pytest.approx(1800.0)
        assert result.training_time_us == pytest.approx(1800.0)
        assert result.exposed_preprocessing_us == 0.0

    def test_kernels_standalone_back_to_back(self, device):
        ks = [kernel(100.0, 0.5, 0.5, f"k{i}") for i in range(3)]
        result = device.run_kernels_standalone(ks)
        assert result.total_time_us == pytest.approx(300.0)
        assert len(result.kernel_spans) == 3
        assert all(not s.overlapped for s in result.kernel_spans)

    def test_stage_spans_recorded(self, device, mlp_stage, emb_stage):
        result = device.run_training_standalone([mlp_stage, emb_stage])
        assert [s.name for s in result.stage_spans] == ["mlp_fwd", "emb_lookup"]
        assert result.stage_spans[0].slowdown == pytest.approx(1.0)


class TestFreeCoRunning:
    """Kernels fitting the leftover co-run with zero training slowdown."""

    def test_small_kernel_is_free(self, device, mlp_stage, emb_stage, small_kernel):
        result = device.simulate_iteration([mlp_stage, emb_stage], {0: [small_kernel]})
        assert result.total_time_us == pytest.approx(1800.0)
        assert result.training_slowdown == pytest.approx(1.0)
        assert result.exposed_preprocessing_us == 0.0

    def test_fitting_kernel_span_is_standalone_duration(self, device, mlp_stage, small_kernel):
        result = device.simulate_iteration([mlp_stage], {0: [small_kernel]})
        span = result.kernel_spans[0]
        assert span.wall_time == pytest.approx(small_kernel.duration_us)
        assert span.overlapped

    def test_many_small_kernels_fill_capacity(self, device, mlp_stage):
        ks = [kernel(100.0, 0.1, 0.05, f"k{i}") for i in range(10)]
        result = device.simulate_iteration([mlp_stage], {0: ks})
        # 10 x 100us exactly fills the 1000us stage: all free.
        assert result.total_time_us == pytest.approx(1000.0)
        assert result.exposed_preprocessing_us == pytest.approx(0.0)


class TestContention:
    def test_big_kernel_slows_training(self, device, mlp_stage, big_kernel):
        result = device.simulate_iteration([mlp_stage], {0: [big_kernel]})
        assert result.total_time_us > mlp_stage.duration_us

    def test_slowdown_matches_rate_sharing(self, device):
        stage = StageProfile("s", 1000.0, ResourceVector(0.8, 0.1))
        k = kernel(1000.0, 0.5, 0.1)  # combined SM demand 1.3
        result = device.simulate_iteration([stage], {0: [k]})
        # Both finish together after 1300us: each did 1000us of work at 1/1.3 rate.
        assert result.total_time_us == pytest.approx(1300.0)
        assert result.training_slowdown == pytest.approx(1.3)

    def test_overlap_latency_monotone_in_kernel_demand(self, device, mlp_stage):
        lats = []
        for sm in (0.1, 0.3, 0.5, 0.8, 1.0):
            k = kernel(800.0, sm, 0.1)
            lats.append(device.overlap_latency(mlp_stage, k))
        assert lats == sorted(lats)

    def test_dram_contention_counts_too(self, device, emb_stage):
        k = kernel(800.0, 0.05, 0.5)  # dram: 0.9 + 0.5 = 1.4
        result = device.simulate_iteration([emb_stage], {0: [k]})
        assert result.training_slowdown > 1.3


class TestSpillAndTrailing:
    def test_kernel_spills_across_stages(self, device, mlp_stage, emb_stage):
        # 1500us kernel fits in neither stage alone; it spans both for free
        # (its demand fits both leftovers).
        k = kernel(1500.0, 0.1, 0.05)
        result = device.simulate_iteration([mlp_stage, emb_stage], {0: [k]})
        assert result.total_time_us == pytest.approx(1800.0)
        assert result.kernel_spans[0].wall_time == pytest.approx(1500.0)

    def test_leftover_work_is_exposed(self, device, mlp_stage):
        k = kernel(2500.0, 0.1, 0.05)
        result = device.simulate_iteration([mlp_stage], {0: [k]})
        assert result.training_time_us == pytest.approx(1000.0)
        assert result.exposed_preprocessing_us == pytest.approx(1500.0)
        assert result.total_time_us == pytest.approx(2500.0)

    def test_trailing_kernels_always_exposed(self, device, mlp_stage, small_kernel):
        result = device.simulate_iteration([mlp_stage], trailing_kernels=[small_kernel])
        assert result.exposed_preprocessing_us == pytest.approx(small_kernel.duration_us)

    def test_assignment_out_of_range_rejected(self, device, mlp_stage, small_kernel):
        with pytest.raises(IndexError):
            device.simulate_iteration([mlp_stage], {5: [small_kernel]})


class TestPolicies:
    def test_stream_policy_slower_than_rap(self, device, mlp_stage, emb_stage):
        ks = [kernel(50.0, 0.1, 0.05, f"k{i}") for i in range(20)]
        rap = device.simulate_iteration([mlp_stage, emb_stage], {0: ks}, policy=RAP_POLICY)
        stream = device.simulate_iteration([mlp_stage, emb_stage], {0: ks}, policy=STREAM_POLICY)
        assert stream.total_time_us > rap.total_time_us

    def test_mps_between_rap_and_stream(self, device, mlp_stage, emb_stage):
        ks = [kernel(50.0, 0.1, 0.05, f"k{i}") for i in range(20)]
        rap = device.simulate_iteration([mlp_stage, emb_stage], {0: ks}, policy=RAP_POLICY)
        mps = device.simulate_iteration([mlp_stage, emb_stage], {0: ks}, policy=MPS_POLICY)
        stream = device.simulate_iteration([mlp_stage, emb_stage], {0: ks}, policy=STREAM_POLICY)
        assert rap.total_time_us < mps.total_time_us < stream.total_time_us

    def test_serialization_fraction_bounds(self):
        with pytest.raises(ValueError):
            CoRunPolicy(serialization_fraction=1.5)

    def test_policy_effective_inflation(self, small_kernel):
        policy = CoRunPolicy(demand_inflation=2.0, per_kernel_overhead_us=10.0)
        duration, demand = policy.effective(small_kernel)
        assert duration == pytest.approx(small_kernel.duration_us + 10.0)
        assert demand.sm == pytest.approx(small_kernel.demand.sm * 2.0)

    def test_full_serialization_equals_sequential(self, device, mlp_stage):
        """serialization_fraction=1 degenerates to run-before-training."""
        policy = CoRunPolicy(name="serial", serialization_fraction=1.0)
        k = kernel(400.0, 0.9, 0.9)
        result = device.simulate_iteration([mlp_stage], {0: [k]}, policy=policy)
        assert result.total_time_us == pytest.approx(1400.0)


class TestCapacityHelper:
    def test_capacity_full_when_probe_fits(self, device, mlp_stage):
        probe = ResourceVector(0.1, 0.1)
        assert device.stage_overlapping_capacity(mlp_stage, probe) == pytest.approx(1000.0)

    def test_capacity_scaled_when_probe_oversized(self, device, mlp_stage):
        probe = ResourceVector(0.3, 0.1)  # leftover sm = 0.15 -> admit 0.5
        cap = device.stage_overlapping_capacity(mlp_stage, probe)
        assert cap == pytest.approx(500.0)

    def test_capacity_zero_probe(self, device, mlp_stage):
        assert device.stage_overlapping_capacity(mlp_stage, ResourceVector(0, 0)) == pytest.approx(
            1000.0
        )


class TestTraceConsistency:
    def test_trace_covers_iteration(self, device, mlp_stage, emb_stage, big_kernel):
        result = device.simulate_iteration([mlp_stage, emb_stage], {0: [big_kernel]})
        assert result.trace.t_end == pytest.approx(result.total_time_us)

    def test_utilization_never_exceeds_one(self, device, mlp_stage, big_kernel):
        result = device.simulate_iteration([mlp_stage], {0: [big_kernel]})
        for seg in result.trace:
            assert seg.utilization.sm <= 1.0 + 1e-9
            assert seg.utilization.dram <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    duration=st.floats(min_value=1.0, max_value=5000.0),
    sm=st.floats(min_value=0.0, max_value=1.0),
    dram=st.floats(min_value=0.0, max_value=1.0),
)
def test_corun_never_faster_than_training(duration, sm, dram):
    """Property: co-running can only extend the iteration, never shrink it."""
    device = GpuDevice(A100_SPEC)
    stages = [
        StageProfile("mlp", 1000.0, ResourceVector(0.85, 0.3)),
        StageProfile("emb", 500.0, ResourceVector(0.2, 0.9)),
    ]
    k = KernelDesc("k", duration, ResourceVector(sm, dram), num_warps=32)
    result = device.simulate_iteration(stages, {0: [k]})
    assert result.total_time_us >= 1500.0 - 1e-6
    # And never slower than fully sequential execution.
    assert result.total_time_us <= 1500.0 + duration * max(1.0, sm + 1, dram + 1) + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=1.0, max_value=300.0), min_size=1, max_size=8),
)
def test_kernel_work_is_conserved(durations):
    """Property: every assigned kernel eventually completes exactly once."""
    device = GpuDevice(A100_SPEC)
    stages = [StageProfile("mlp", 400.0, ResourceVector(0.8, 0.3))]
    ks = [
        KernelDesc(f"k{i}", d, ResourceVector(0.15, 0.1), num_warps=32)
        for i, d in enumerate(durations)
    ]
    result = device.simulate_iteration(stages, {0: ks})
    assert len(result.kernel_spans) == len(ks)
    assert {s.name for s in result.kernel_spans} == {k.name for k in ks}
