"""Deep property tests for the device simulator over random schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import (
    GpuDevice,
    KernelDesc,
    MPS_POLICY,
    RAP_POLICY,
    ResourceVector,
    STREAM_POLICY,
    StageProfile,
)

stage_strategy = st.builds(
    StageProfile,
    name=st.sampled_from(["mlp", "emb", "comm", "opt"]),
    duration_us=st.floats(min_value=10.0, max_value=3000.0),
    utilization=st.builds(
        ResourceVector,
        sm=st.floats(min_value=0.0, max_value=1.0),
        dram=st.floats(min_value=0.0, max_value=1.0),
    ),
)

kernel_strategy = st.builds(
    KernelDesc,
    name=st.sampled_from(["k1", "k2", "k3"]),
    duration_us=st.floats(min_value=1.0, max_value=800.0),
    demand=st.builds(
        ResourceVector,
        sm=st.floats(min_value=0.0, max_value=1.0),
        dram=st.floats(min_value=0.0, max_value=1.0),
    ),
    num_warps=st.integers(min_value=1, max_value=20_000),
)


@settings(max_examples=60, deadline=None)
@given(
    stages=st.lists(stage_strategy, min_size=1, max_size=6),
    kernels=st.lists(kernel_strategy, min_size=0, max_size=6),
    data=st.data(),
)
def test_random_schedules_satisfy_invariants(stages, kernels, data):
    """Invariant bundle over arbitrary stage pipelines and assignments."""
    device = GpuDevice()
    assignments = {}
    for k in kernels:
        idx = data.draw(st.integers(min_value=0, max_value=len(stages) - 1))
        assignments.setdefault(idx, []).append(k)
    result = device.simulate_iteration(stages, assignments)

    standalone = sum(s.duration_us for s in stages)
    # 1. Training is never faster than standalone.
    assert result.training_time_us >= standalone - 1e-6
    # 2. Total time decomposes into training + exposed.
    assert result.total_time_us == pytest.approx(
        result.training_time_us + result.exposed_preprocessing_us
    )
    # 3. Every stage and kernel completes exactly once.
    assert len(result.stage_spans) == len(stages)
    assert len(result.kernel_spans) == len(kernels)
    # 4. Spans are non-negative and inside the iteration.
    for span in result.stage_spans + result.kernel_spans:
        assert span.t_start >= -1e-9
        assert span.t_end <= result.total_time_us + 1e-6
        assert span.wall_time >= -1e-9
    # 5. Stage order is preserved.
    starts = [s.t_start for s in result.stage_spans]
    assert starts == sorted(starts)
    # 6. The trace tiles the whole iteration without overlap.
    assert result.trace.t_end == pytest.approx(result.total_time_us)
    for a, b in zip(result.trace.segments, result.trace.segments[1:]):
        assert b.t0 >= a.t1 - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    stages=st.lists(stage_strategy, min_size=1, max_size=4),
    kernels=st.lists(kernel_strategy, min_size=1, max_size=4),
    data=st.data(),
)
def test_policy_ordering_holds_on_fitted_workloads(stages, kernels, data):
    """RAP <= MPS <= STREAM total time on demand-fitted workloads.

    The ordering is only a theorem in the contention-free regime RAP's
    scheduler actually produces (kernels demand-sharded to fit every
    stage's leftover, including under the baselines' demand inflation).
    Outside it, a serializing policy can beat pure co-running by running a
    saturating kernel at standalone rate while training is blocked, so the
    kernels are re-fitted here rather than drawn free.
    """
    inflation = max(MPS_POLICY.demand_inflation, STREAM_POLICY.demand_inflation)
    sm_cap = min(s.leftover().sm for s in stages) / inflation
    dram_cap = min(s.leftover().dram for s in stages) / inflation
    fitted = []
    for k in kernels:
        sm = data.draw(st.floats(min_value=0.0, max_value=sm_cap))
        dram = data.draw(st.floats(min_value=0.0, max_value=dram_cap))
        fitted.append(
            KernelDesc(
                name=k.name,
                duration_us=k.duration_us,
                demand=ResourceVector(sm=sm, dram=dram),
                num_warps=k.num_warps,
            )
        )
    device = GpuDevice()
    times = {}
    for name, policy in (("rap", RAP_POLICY), ("mps", MPS_POLICY), ("stream", STREAM_POLICY)):
        result = device.simulate_iteration(stages, {0: fitted}, policy=policy)
        times[name] = result.total_time_us
    assert times["rap"] <= times["mps"] + 1e-6
    assert times["mps"] <= times["stream"] + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    stage=stage_strategy,
    kernel=kernel_strategy,
    extra=st.floats(min_value=1.0, max_value=500.0),
)
def test_longer_kernels_never_finish_earlier(stage, kernel, extra):
    """Monotonicity: growing a kernel's duration never shrinks the iteration."""
    device = GpuDevice()
    short = device.simulate_iteration([stage], {0: [kernel]})
    longer = device.simulate_iteration([stage], {0: [kernel.with_duration(kernel.duration_us + extra)]})
    assert longer.total_time_us >= short.total_time_us - 1e-6


@settings(max_examples=30, deadline=None)
@given(
    stages=st.lists(stage_strategy, min_size=1, max_size=4),
    kernels=st.lists(kernel_strategy, min_size=1, max_size=5),
)
def test_trailing_equals_assignment_to_end(stages, kernels):
    """Kernels assigned nowhere behave like trailing kernels."""
    device = GpuDevice()
    as_trailing = device.simulate_iteration(stages, {}, trailing_kernels=kernels)
    standalone = sum(s.duration_us for s in stages)
    assert as_trailing.training_time_us == pytest.approx(standalone)
    assert as_trailing.exposed_preprocessing_us == pytest.approx(
        sum(k.duration_us for k in kernels)
    )
