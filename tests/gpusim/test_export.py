"""Tests for trace export (Chrome trace JSON and ASCII Gantt)."""

import json

import pytest

from repro.gpusim import (
    KernelDesc,
    MultiGpuCluster,
    ResourceVector,
    StageProfile,
    render_gantt,
    to_chrome_trace,
)


@pytest.fixture
def result(device, mlp_stage, emb_stage, small_kernel):
    return device.simulate_iteration([mlp_stage, emb_stage], {0: [small_kernel]})


class TestChromeTrace:
    def test_valid_json(self, result):
        data = json.loads(to_chrome_trace(result))
        assert "traceEvents" in data

    def test_contains_stage_and_kernel_events(self, result):
        data = json.loads(to_chrome_trace(result))
        names = {e["name"] for e in data["traceEvents"] if e.get("ph") == "X"}
        assert "mlp_fwd" in names
        assert "k_small" in names

    def test_durations_match_simulation(self, result):
        data = json.loads(to_chrome_trace(result))
        events = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        total_end = max(e["ts"] + e["dur"] for e in events)
        assert total_end == pytest.approx(result.total_time_us)

    def test_cluster_trace_one_pid_per_gpu(self):
        cluster = MultiGpuCluster(3)
        stages = [StageProfile("s", 100.0, ResourceVector(0.5, 0.5))]
        res = cluster.simulate_iteration([stages] * 3)
        data = json.loads(to_chrome_trace(res))
        pids = {e["pid"] for e in data["traceEvents"]}
        assert pids == {0, 1, 2}

    def test_threads_labeled(self, result):
        data = json.loads(to_chrome_trace(result))
        meta = [e for e in data["traceEvents"] if e.get("ph") == "M"]
        names = {e["args"].get("name") for e in meta}
        assert {"GPU 0", "training", "preprocessing"} <= names

    def test_round_trip_validity(self):
        """The emitted trace satisfies the Trace Event Format contract.

        Regression for traces that loaded in chrome://tracing but rendered
        wrong: metadata events lacked the reserved "__metadata" category
        and a tid, and GPU rows sorted by event order instead of GPU index.
        """
        cluster = MultiGpuCluster(2)
        stages = [StageProfile("s", 100.0, ResourceVector(0.5, 0.5))]
        res = cluster.simulate_iteration([stages] * 2)
        data = json.loads(to_chrome_trace(res))
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        gpus = set(range(2))
        for event in data["traceEvents"]:
            # Every event carries the complete required key set.
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["pid"] in gpus
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
                assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
                assert event["cat"] in ("training", "preprocessing")
            else:
                assert event["ph"] == "M"
                assert event["cat"] == "__metadata"
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        for pid in gpus:
            mine = {e["name"]: e for e in meta if e["pid"] == pid}
            assert mine["process_name"]["args"]["name"] == f"GPU {pid}"
            assert mine["process_sort_index"]["args"]["sort_index"] == pid
            thread_names = {
                (e["tid"], e["args"]["name"])
                for e in meta
                if e["pid"] == pid and e["name"] == "thread_name"
            }
            assert thread_names == {(0, "training"), (1, "preprocessing")}


class TestGantt:
    def test_renders_all_stage_rows(self, result):
        out = render_gantt(result)
        assert "mlp_fwd" in out and "emb_lookup" in out
        assert "=" in out and "#" in out

    def test_rejects_tiny_width(self, result):
        with pytest.raises(ValueError):
            render_gantt(result, width=5)

    def test_empty_iteration(self, device):
        res = device.run_training_standalone([])
        assert render_gantt(res) == "(empty iteration)"

    def test_row_cap(self, device, mlp_stage):
        kernels = [
            KernelDesc(f"k{i}", 5.0, ResourceVector(0.01, 0.01)) for i in range(60)
        ]
        res = device.simulate_iteration([mlp_stage], {0: kernels})
        out = render_gantt(res, max_rows=10)
        assert "more kernels not shown" in out

    def test_bars_fit_width(self, result):
        out = render_gantt(result, width=60)
        for line in out.splitlines()[2:]:
            if "|" in line:
                assert len(line.split("|", 1)[1]) <= 61
