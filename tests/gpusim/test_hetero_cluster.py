"""Heterogeneous MultiGpuCluster: per-device specs threaded through shrink."""

import pytest

from repro.gpusim import A100_SPEC, H100_SPEC, V100_SPEC, MultiGpuCluster


class TestSpecThreading:
    def test_spec_for_gpu_follows_the_fleet(self):
        cluster = MultiGpuCluster(3, A100_SPEC, specs=(A100_SPEC, H100_SPEC, V100_SPEC))
        assert cluster.heterogeneous
        assert cluster.spec_for_gpu(0) is A100_SPEC
        assert cluster.spec_for_gpu(1) is H100_SPEC
        assert cluster.spec_for_gpu(2) is V100_SPEC

    def test_homogeneous_default(self):
        cluster = MultiGpuCluster(2, A100_SPEC)
        assert not cluster.heterogeneous
        assert cluster.spec_for_gpu(1) is A100_SPEC

    def test_uniform_specs_are_not_heterogeneous(self):
        cluster = MultiGpuCluster(2, A100_SPEC, specs=(A100_SPEC, A100_SPEC))
        assert not cluster.heterogeneous

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="specs lists 2"):
            MultiGpuCluster(3, A100_SPEC, specs=(A100_SPEC, H100_SPEC))


class TestInterconnect:
    def test_fabric_clamps_to_the_weakest_link(self):
        mixed = MultiGpuCluster(3, A100_SPEC, specs=(A100_SPEC, H100_SPEC, V100_SPEC))
        # The V100's 150 GB/s NVLink bounds the shared fabric, not the
        # H100's 450 GB/s.
        slowest = min(s.nvlink_bw_gbps for s in mixed.specs)
        assert slowest == V100_SPEC.nvlink_bw_gbps
        all_h100 = MultiGpuCluster(3, H100_SPEC)
        size = 1 << 20
        assert mixed.interconnect.all_reduce_us(size, 3) > all_h100.interconnect.all_reduce_us(
            size, 3
        )


class TestShrink:
    def test_shrink_drops_exactly_the_lost_spec(self):
        cluster = MultiGpuCluster(3, A100_SPEC, specs=(A100_SPEC, H100_SPEC, V100_SPEC))
        survivor = cluster.shrink(1)
        assert survivor.num_gpus == 2
        assert survivor.specs == (A100_SPEC, V100_SPEC)
        assert survivor.heterogeneous
        # The interconnect object is carried over: losing the H100 does not
        # re-rate the fabric mid-run.
        assert survivor.interconnect is cluster.interconnect

    def test_shrink_to_homogeneous_remnant(self):
        cluster = MultiGpuCluster(3, A100_SPEC, specs=(A100_SPEC, A100_SPEC, H100_SPEC))
        survivor = cluster.shrink(2)
        assert survivor.specs == (A100_SPEC, A100_SPEC)
        assert not survivor.heterogeneous

    def test_homogeneous_shrink_keeps_specs_unset(self):
        survivor = MultiGpuCluster(3, A100_SPEC).shrink(0)
        assert survivor.specs is None
        assert survivor.spec_for_gpu(0) is A100_SPEC
