"""Unit tests for the NVLink/NVSwitch interconnect model."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.interconnect import Interconnect

IC = Interconnect()


class TestPointToPoint:
    def test_zero_bytes_is_free(self):
        assert IC.p2p_us(0) == 0.0

    def test_alpha_floor(self):
        assert IC.p2p_us(1) >= IC.alpha_us

    def test_linear_in_bytes(self):
        base = IC.p2p_us(10_000_000) - IC.alpha_us
        double = IC.p2p_us(20_000_000) - IC.alpha_us
        assert double == pytest.approx(2 * base)


class TestAllToAll:
    def test_single_gpu_is_free(self):
        assert IC.all_to_all_us(1_000_000, 1) == 0.0

    def test_zero_payload_is_free(self):
        assert IC.all_to_all_us(0, 8) == 0.0

    def test_more_gpus_more_payload_fraction(self):
        t2 = IC.all_to_all_us(10_000_000, 2)
        t8 = IC.all_to_all_us(10_000_000, 8)
        # (n-1)/n grows with n: 1/2 vs 7/8 of the payload crosses links.
        assert t8 > t2


class TestAllReduce:
    def test_trivial_cases(self):
        assert IC.all_reduce_us(1_000_000, 1) == 0.0
        assert IC.all_reduce_us(0, 8) == 0.0

    def test_ring_volume(self):
        t = IC.all_reduce_us(1_000_000, 4)
        expected = IC.alpha_us + 2 * 1_000_000 * 3 / 4 / IC.link_bytes_per_us
        assert t == pytest.approx(expected)


class TestRedistribution:
    def test_zero_volume_free(self):
        assert IC.redistribution_us(0, 8) == 0.0

    def test_single_gpu_free(self):
        assert IC.redistribution_us(1_000_000, 1) == 0.0

    def test_parallelizes_across_sources(self):
        t4 = IC.redistribution_us(10_000_000, 4)
        t8 = IC.redistribution_us(10_000_000, 8)
        assert t8 < t4

    @given(st.floats(min_value=1.0, max_value=1e9), st.integers(min_value=2, max_value=16))
    def test_monotone_in_volume(self, nbytes, n):
        assert IC.redistribution_us(nbytes * 2, n) > IC.redistribution_us(nbytes, n)
