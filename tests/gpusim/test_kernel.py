"""Unit tests for kernel descriptors, fusion, and sharding physics."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.kernel import KernelDesc, fuse_kernels, shard_kernel
from repro.gpusim.resources import A100_SPEC, ResourceVector

SLOTS = A100_SPEC.total_warp_slots


def make_kernel(duration=100.0, sm=0.1, dram=0.1, warps=64, tag="FillNull", launch=5.0):
    return KernelDesc(
        name=f"{tag}:test",
        duration_us=duration,
        demand=ResourceVector(sm, dram),
        num_warps=warps,
        tag=tag,
        launch_us=launch,
        warp_slots=SLOTS,
    )


class TestKernelDesc:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            KernelDesc("k", -1.0, ResourceVector(0.1, 0.1))

    def test_rejects_negative_warps(self):
        with pytest.raises(ValueError):
            KernelDesc("k", 1.0, ResourceVector(0.1, 0.1), num_warps=-1)

    def test_rejects_launch_exceeding_duration(self):
        with pytest.raises(ValueError):
            KernelDesc("k", 1.0, ResourceVector(0.1, 0.1), launch_us=2.0)

    def test_body_us(self):
        k = make_kernel(duration=100.0, launch=5.0)
        assert k.body_us == pytest.approx(95.0)

    def test_waves_subsaturation(self):
        k = make_kernel(warps=SLOTS // 2)
        assert k.waves == 1.0

    def test_waves_oversubscribed(self):
        k = make_kernel(warps=3 * SLOTS)
        assert k.waves == pytest.approx(3.0)

    def test_wave_floor(self):
        k = make_kernel(duration=305.0, launch=5.0, warps=3 * SLOTS)
        assert k.wave_floor_us == pytest.approx(100.0)

    def test_with_duration(self):
        k = make_kernel(duration=100.0)
        assert k.with_duration(42.0).duration_us == 42.0


class TestSharding:
    def test_scaled_identity(self):
        k = make_kernel()
        assert k.scaled(1.0) is k

    def test_scaled_rejects_bad_fraction(self):
        k = make_kernel()
        with pytest.raises(ValueError):
            k.scaled(0.0)
        with pytest.raises(ValueError):
            k.scaled(1.5)

    def test_shard_pays_launch_twice(self):
        """Sharding is not free: total duration grows by one launch."""
        k = make_kernel(duration=205.0, launch=5.0, warps=4 * SLOTS, sm=1.0)
        a, b = shard_kernel(k, 0.5)
        assert a.duration_us + b.duration_us > k.duration_us
        assert a.duration_us + b.duration_us == pytest.approx(k.duration_us + k.launch_us, rel=0.02)

    def test_shard_saturated_halves_body(self):
        k = make_kernel(duration=405.0, launch=5.0, warps=4 * SLOTS, sm=1.0)
        a, b = shard_kernel(k, 0.5)
        assert a.body_us == pytest.approx(200.0, rel=0.01)
        assert b.body_us == pytest.approx(200.0, rel=0.01)

    def test_shard_below_saturation_hits_wave_floor(self):
        """A sub-saturation kernel does not get faster by sharding."""
        k = make_kernel(duration=25.0, launch=5.0, warps=1000, sm=1000 / SLOTS)
        a, b = shard_kernel(k, 0.5)
        # Both shards keep the full wave-floor body time.
        assert a.body_us == pytest.approx(k.body_us, rel=0.01)
        assert b.body_us == pytest.approx(k.body_us, rel=0.01)

    def test_shard_demand_drops_below_saturation(self):
        k = make_kernel(duration=105.0, launch=5.0, warps=SLOTS // 2, sm=0.5, dram=0.4)
        a, _ = shard_kernel(k, 0.5)
        assert a.demand.sm == pytest.approx(0.25, rel=0.05)
        assert a.demand.dram < 0.4

    def test_saturated_shard_keeps_full_demand(self):
        """Half of a 4-wave kernel still saturates the device."""
        k = make_kernel(duration=405.0, launch=5.0, warps=4 * SLOTS, sm=1.0)
        a, _ = shard_kernel(k, 0.5)
        assert a.demand.sm == 1.0

    def test_shard_names_are_distinct(self):
        a, b = shard_kernel(make_kernel(warps=2 * SLOTS), 0.3)
        assert a.name != b.name

    def test_shard_rejects_degenerate_fractions(self):
        k = make_kernel()
        with pytest.raises(ValueError):
            shard_kernel(k, 0.0)
        with pytest.raises(ValueError):
            shard_kernel(k, 1.0)

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_shard_warps_conserved_approximately(self, fraction):
        k = make_kernel(duration=405.0, launch=5.0, warps=10_000, sm=1.0)
        a, b = shard_kernel(k, fraction)
        assert abs(a.num_warps + b.num_warps - k.num_warps) <= k.num_warps * 0.02 + 2


class TestFusion:
    def test_fuse_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse_kernels([], A100_SPEC)

    def test_fuse_mixed_types_rejected(self):
        with pytest.raises(ValueError):
            fuse_kernels([make_kernel(tag="FillNull"), make_kernel(tag="Ngram")], A100_SPEC)

    def test_fuse_single_is_identity(self):
        k = make_kernel()
        assert fuse_kernels([k], A100_SPEC) is k

    def test_fusion_amortizes_launch(self):
        """Fusing launch-bound kernels beats running them back to back."""
        members = [make_kernel(duration=20.0, launch=5.0, sm=0.01, dram=0.01, warps=32) for _ in range(8)]
        fused = fuse_kernels(members, A100_SPEC)
        serial = sum(k.duration_us for k in members)
        assert fused.duration_us < serial
        assert fused.duration_us < serial / 3

    def test_fused_demand_is_summed(self):
        members = [make_kernel(sm=0.2, dram=0.1, warps=SLOTS // 5) for _ in range(3)]
        fused = fuse_kernels(members, A100_SPEC)
        assert fused.demand.sm == pytest.approx(0.6, rel=0.01)
        assert fused.demand.dram == pytest.approx(0.3, rel=0.01)

    def test_fused_demand_capped_at_one(self):
        members = [make_kernel(sm=0.5, dram=0.5, warps=SLOTS // 2) for _ in range(4)]
        fused = fuse_kernels(members, A100_SPEC)
        assert fused.demand.sm == 1.0
        assert fused.demand.dram == 1.0

    def test_fusion_never_beats_max_member_body(self):
        members = [make_kernel(duration=50.0, launch=5.0, warps=500, sm=0.07) for _ in range(4)]
        fused = fuse_kernels(members, A100_SPEC)
        assert fused.body_us >= max(k.body_us for k in members) - 1e-9

    def test_fusion_never_exceeds_serial_body(self):
        members = [make_kernel(duration=100.0, launch=5.0, warps=SLOTS, sm=1.0) for _ in range(5)]
        fused = fuse_kernels(members, A100_SPEC)
        assert fused.body_us <= sum(k.body_us for k in members) + 1e-9

    def test_fused_metadata(self):
        members = [make_kernel() for _ in range(3)]
        fused = fuse_kernels(members, A100_SPEC)
        assert fused.meta["members"] == 3
        assert len(fused.meta["fused"]) == 3
        assert fused.tag == "FillNull"

    def test_fused_warps_summed(self):
        members = [make_kernel(warps=100) for _ in range(4)]
        assert fuse_kernels(members, A100_SPEC).num_warps == 400

    @given(st.integers(min_value=2, max_value=30))
    def test_fusion_monotone_in_member_count(self, n):
        """More fused members never make the fused kernel shorter."""
        small = [make_kernel(duration=20.0, launch=5.0, sm=0.05, dram=0.02, warps=320) for _ in range(n)]
        fused_n = fuse_kernels(small, A100_SPEC)
        fused_2 = fuse_kernels(small[:2], A100_SPEC)
        assert fused_n.duration_us >= fused_2.duration_us - 1e-9
