"""Unit tests for GPU specs and resource-vector arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.resources import (
    A100_SPEC,
    V100_SPEC,
    GpuSpec,
    ResourceVector,
    warps_to_sm_fraction,
)

fractions = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)


class TestGpuSpec:
    def test_a100_defaults(self):
        assert A100_SPEC.num_sms == 108
        assert A100_SPEC.warps_per_sm == 64
        assert A100_SPEC.total_warp_slots == 108 * 64

    def test_v100_is_smaller(self):
        assert V100_SPEC.num_sms < A100_SPEC.num_sms
        assert V100_SPEC.dram_bw_gbps < A100_SPEC.dram_bw_gbps

    def test_dram_bytes_per_us(self):
        spec = GpuSpec(dram_bw_gbps=1000.0)
        assert spec.dram_bytes_per_us == pytest.approx(1e6)

    def test_h2d_time_scales_linearly(self):
        assert A100_SPEC.h2d_time_us(2_000_000) == pytest.approx(
            2 * A100_SPEC.h2d_time_us(1_000_000)
        )

    def test_h2d_time_zero_bytes(self):
        assert A100_SPEC.h2d_time_us(0) == 0.0
        assert A100_SPEC.h2d_time_us(-5) == 0.0


class TestWarpsToSmFraction:
    def test_zero_warps(self):
        assert warps_to_sm_fraction(0, A100_SPEC) == 0.0

    def test_negative_warps(self):
        assert warps_to_sm_fraction(-10, A100_SPEC) == 0.0

    def test_saturation(self):
        assert warps_to_sm_fraction(A100_SPEC.total_warp_slots, A100_SPEC) == 1.0
        assert warps_to_sm_fraction(10 * A100_SPEC.total_warp_slots, A100_SPEC) == 1.0

    def test_half_occupancy(self):
        half = A100_SPEC.total_warp_slots // 2
        assert warps_to_sm_fraction(half, A100_SPEC) == pytest.approx(0.5)

    @given(st.integers(min_value=0, max_value=10**7))
    def test_bounded(self, warps):
        frac = warps_to_sm_fraction(warps, A100_SPEC)
        assert 0.0 <= frac <= 1.0


class TestResourceVector:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(-0.1, 0.5)
        with pytest.raises(ValueError):
            ResourceVector(0.5, -0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ResourceVector(math.nan, 0.0)

    def test_add(self):
        v = ResourceVector(0.3, 0.4) + ResourceVector(0.2, 0.1)
        assert v.sm == pytest.approx(0.5)
        assert v.dram == pytest.approx(0.5)

    def test_scale(self):
        v = ResourceVector(0.4, 0.8).scale(0.5)
        assert v.sm == pytest.approx(0.2)
        assert v.dram == pytest.approx(0.4)

    def test_scale_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ResourceVector(0.1, 0.1).scale(-1.0)

    def test_clamp(self):
        v = ResourceVector(1.5, 0.2).clamp()
        assert v.sm == 1.0
        assert v.dram == pytest.approx(0.2)

    def test_peak(self):
        assert ResourceVector(0.3, 0.7).peak == pytest.approx(0.7)
        assert ResourceVector(0.9, 0.7).peak == pytest.approx(0.9)

    def test_headroom(self):
        h = ResourceVector(0.3, 0.9).headroom()
        assert h.sm == pytest.approx(0.7)
        assert h.dram == pytest.approx(0.1)

    def test_headroom_never_negative(self):
        h = ResourceVector(1.5, 2.0).headroom()
        assert h.sm == 0.0
        assert h.dram == 0.0

    def test_fits_within(self):
        avail = ResourceVector(0.5, 0.5)
        assert ResourceVector(0.5, 0.5).fits_within(avail)
        assert ResourceVector(0.4, 0.1).fits_within(avail)
        assert not ResourceVector(0.6, 0.1).fits_within(avail)

    def test_contention_factor_no_contention(self):
        train = ResourceVector(0.5, 0.5)
        assert train.contention_factor(ResourceVector(0.4, 0.4)) == 1.0

    def test_contention_factor_oversubscribed(self):
        train = ResourceVector(0.8, 0.2)
        assert train.contention_factor(ResourceVector(0.5, 0.1)) == pytest.approx(1.3)

    def test_contention_picks_worst_resource(self):
        train = ResourceVector(0.2, 0.9)
        kernel = ResourceVector(0.2, 0.5)
        assert train.contention_factor(kernel) == pytest.approx(1.4)

    def test_as_tuple(self):
        assert ResourceVector(0.25, 0.75).as_tuple() == (0.25, 0.75)

    @given(fractions, fractions, fractions, fractions)
    def test_contention_is_symmetric(self, a, b, c, d):
        v1, v2 = ResourceVector(a, b), ResourceVector(c, d)
        assert v1.contention_factor(v2) == pytest.approx(v2.contention_factor(v1))

    @given(fractions, fractions)
    def test_contention_at_least_one(self, a, b):
        v = ResourceVector(a, b)
        assert v.contention_factor(ResourceVector(0.0, 0.0)) >= 1.0

    @given(fractions, fractions)
    def test_headroom_plus_util_covers_unit(self, a, b):
        v = ResourceVector(a, b)
        h = v.headroom()
        assert v.sm + h.sm >= 1.0 - 1e-12 or v.sm >= 1.0
        assert min(v.sm + h.sm, 1.0) == pytest.approx(min(1.0, max(v.sm, 1.0)) if v.sm >= 1 else 1.0)
