"""Tests for the stream/MPS sharing entry points."""

import pytest

from repro.gpusim import (
    GpuDevice,
    KernelDesc,
    ResourceVector,
    StageProfile,
    run_on_low_priority_stream,
    run_under_mps,
)


@pytest.fixture
def pipeline():
    return [
        StageProfile("mlp", 1000.0, ResourceVector(0.85, 0.3)),
        StageProfile("emb", 600.0, ResourceVector(0.2, 0.9)),
    ]


@pytest.fixture
def kernels():
    return [
        KernelDesc(f"k{i}", 60.0, ResourceVector(0.2, 0.1), num_warps=64, tag="FillNull")
        for i in range(6)
    ]


def test_stream_completes_all_kernels(pipeline, kernels):
    result = run_on_low_priority_stream(GpuDevice(), pipeline, kernels)
    assert len(result.kernel_spans) == len(kernels)


def test_stream_extends_training(pipeline, kernels):
    device = GpuDevice()
    base = device.run_training_standalone(pipeline)
    result = run_on_low_priority_stream(device, pipeline, kernels)
    assert result.total_time_us > base.total_time_us


def test_mps_beats_stream(pipeline, kernels):
    device = GpuDevice()
    stream = run_on_low_priority_stream(device, pipeline, kernels)
    mps = run_under_mps(device, pipeline, kernels)
    assert mps.total_time_us < stream.total_time_us


def test_empty_kernel_list_is_noop(pipeline):
    device = GpuDevice()
    base = device.run_training_standalone(pipeline)
    stream = run_on_low_priority_stream(device, pipeline, [])
    mps = run_under_mps(device, pipeline, [])
    assert stream.total_time_us == pytest.approx(base.total_time_us)
    assert mps.total_time_us == pytest.approx(base.total_time_us)
