"""Unit tests for utilization traces."""

import numpy as np
import pytest

from repro.gpusim.resources import ResourceVector
from repro.gpusim.trace import TraceSegment, UtilizationTrace


def make_trace():
    t = UtilizationTrace()
    t.record(0.0, 100.0, ResourceVector(0.8, 0.2), label="mlp")
    t.record(100.0, 300.0, ResourceVector(0.2, 0.9), label="emb")
    return t


class TestTraceSegment:
    def test_rejects_reversed_interval(self):
        with pytest.raises(ValueError):
            TraceSegment(10.0, 5.0, ResourceVector(0.1, 0.1))

    def test_duration(self):
        assert TraceSegment(2.0, 7.0, ResourceVector(0, 0)).duration == 5.0


class TestUtilizationTrace:
    def test_append_contiguous(self):
        t = make_trace()
        assert len(t) == 2
        assert t.t_start == 0.0
        assert t.t_end == 300.0
        assert t.duration == 300.0

    def test_rejects_overlapping_segment(self):
        t = make_trace()
        with pytest.raises(ValueError):
            t.record(250.0, 400.0, ResourceVector(0.1, 0.1))

    def test_gap_is_allowed(self):
        t = make_trace()
        t.record(350.0, 400.0, ResourceVector(0.5, 0.5))
        assert t.t_end == 400.0

    def test_zero_duration_segment_skipped(self):
        t = make_trace()
        t.record(300.0, 300.0, ResourceVector(1.0, 1.0))
        assert len(t) == 2

    def test_empty_trace(self):
        t = UtilizationTrace()
        assert t.duration == 0.0
        assert t.busy_fraction() == 0.0
        times, sm, dram = t.sample(1.0)
        assert times.size == 0

    def test_sample_values(self):
        t = make_trace()
        times, sm, dram = t.sample(50.0)
        assert len(times) == 6
        np.testing.assert_allclose(sm[:2], 0.8)
        np.testing.assert_allclose(dram[2:], 0.9)

    def test_sample_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            make_trace().sample(0.0)

    def test_mean_utilization_whole(self):
        t = make_trace()
        mean = t.mean_utilization()
        # Time-weighted: (0.8*100 + 0.2*200)/300, (0.2*100 + 0.9*200)/300.
        assert mean.sm == pytest.approx((0.8 * 100 + 0.2 * 200) / 300)
        assert mean.dram == pytest.approx((0.2 * 100 + 0.9 * 200) / 300)

    def test_mean_utilization_window(self):
        t = make_trace()
        mean = t.mean_utilization(0.0, 100.0)
        assert mean.sm == pytest.approx(0.8)

    def test_mean_utilization_degenerate_window(self):
        t = make_trace()
        mean = t.mean_utilization(50.0, 50.0)
        assert mean.sm == 0.0

    def test_busy_fraction_all_busy(self):
        assert make_trace().busy_fraction() == pytest.approx(1.0)

    def test_busy_fraction_with_idle(self):
        t = make_trace()
        t.record(300.0, 400.0, ResourceVector(0.0, 0.0), label="idle")
        assert t.busy_fraction() == pytest.approx(0.75)

    def test_leftover_area(self):
        t = make_trace()
        area = t.leftover_area()
        assert area.sm == pytest.approx(0.2 * 100 + 0.8 * 200)
        assert area.dram == pytest.approx(0.8 * 100 + 0.1 * 200)

    def test_shifted(self):
        t = make_trace().shifted(1000.0)
        assert t.t_start == 1000.0
        assert t.t_end == 1300.0

    def test_extend(self):
        t = make_trace()
        other = UtilizationTrace()
        other.record(300.0, 350.0, ResourceVector(0.1, 0.1))
        t.extend(other)
        assert t.t_end == 350.0

    def test_segments_are_immutable_tuple(self):
        t = make_trace()
        assert isinstance(t.segments, tuple)
        assert len(t.segments) == 2
