"""Feeder lifecycle: leases, queue mode, metrics, and edge cases.

The cross-cutting ordering/shutdown/traceback behavior stays pinned in
tests/preprocessing/test_pipeline.py (the legacy import path); this module
covers what the rewrite added — multi-use leases, the backpressure queue
between producer and consumer, ingest metrics, and the lifecycle edge
cases from the issue (zero batches, depth > num_batches, consumer break
under a slow in-flight producer, process-mode cause chains) driven
through real ingest sources.
"""

import threading
import time

import pytest

from repro.ingest import (
    IngestMetrics,
    PipelinedFeeder,
    QueueConfig,
    source,
    write_csv,
)


def _feeder_threads():
    return [t for t in threading.enumerate() if t.name.startswith("rap-feeder")]


def _identity(i: int) -> int:
    return i


def _slow_identity(i: int) -> int:
    time.sleep(0.15)
    return i


def _boom_on_two(i: int) -> int:
    if i == 2:
        raise ValueError(f"producer failed on batch {i}")
    return i


@pytest.fixture(scope="module")
def csv_source(tmp_path_factory):
    src = source("synthetic://kaggle?batch=48&batches=6&seed=3")
    path = tmp_path_factory.mktemp("feed") / "feed.csv"
    write_csv(str(path), [src.batch(i) for i in range(6)])
    return source(f"csv://{path}?batch=48")


# ----------------------------------------------------------------------
# multi-use lifecycle
# ----------------------------------------------------------------------


def test_source_supplies_num_batches_and_reiterates(csv_source):
    feeder = PipelinedFeeder(csv_source, workers=2)
    assert feeder.num_batches == 6
    first = [b.size for b in feeder]
    second = [b.size for b in feeder]  # the old code raised here
    assert first == second == [48] * 6
    feeder.close()


def test_unsized_producer_requires_explicit_count():
    with pytest.raises(ValueError, match="num_batches"):
        PipelinedFeeder(lambda i: i)


def test_concurrent_iterations_get_independent_leases(csv_source):
    feeder = PipelinedFeeder(csv_source, depth=2)
    it_a, it_b = iter(feeder), iter(feeder)
    a0, b0 = next(it_a), next(it_b)
    assert a0.size == b0.size == 48
    assert len([b for b in it_a]) == 5  # each lease sees the full epoch
    assert len([b for b in it_b]) == 5
    feeder.close()
    assert not _feeder_threads()


def test_close_releases_live_lease_workers(csv_source):
    feeder = PipelinedFeeder(csv_source, depth=2, workers=2)
    it = iter(feeder)
    next(it)
    assert _feeder_threads()
    feeder.close()
    for t in _feeder_threads():
        t.join(timeout=5.0)
    assert not _feeder_threads()
    with pytest.raises(RuntimeError, match="closed"):
        next(iter(feeder))


# ----------------------------------------------------------------------
# edge cases (issue satellite): zero batches, depth > num_batches,
# consumer break with a slow in-flight producer, process-mode causes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("queue", [None, QueueConfig(capacity=2)])
def test_zero_batches_yields_nothing_and_reiterates(queue):
    feeder = PipelinedFeeder(_identity, num_batches=0, queue=queue)
    assert list(feeder) == []
    assert list(feeder) == []
    feeder.close()


@pytest.mark.parametrize("queue", [None, QueueConfig(capacity=8)])
def test_depth_larger_than_num_batches(queue):
    feeder = PipelinedFeeder(_identity, num_batches=3, depth=10, queue=queue)
    assert list(feeder) == [0, 1, 2]
    assert list(feeder) == [0, 1, 2]
    feeder.close()


@pytest.mark.parametrize("queue", [None, QueueConfig(capacity=2)])
def test_consumer_break_with_slow_inflight_producer_bounded(queue):
    feeder = PipelinedFeeder(_slow_identity, num_batches=100, depth=2, queue=queue)
    start = time.perf_counter()
    for value in feeder:
        break
    # Shutdown waits only for the <= depth batches already started, never
    # the remaining ~98: well under a second for 0.15 s producers.
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0
    feeder.close()
    for t in _feeder_threads():
        t.join(timeout=5.0)
    assert not _feeder_threads()


def test_queue_mode_thread_exception_keeps_original_traceback():
    import traceback

    feeder = PipelinedFeeder(_boom_on_two, num_batches=5, queue=QueueConfig(capacity=2))
    consumed = []
    with pytest.raises(ValueError, match="batch 2") as excinfo:
        for value in feeder:
            consumed.append(value)
    assert consumed == [0, 1]
    frames = traceback.extract_tb(excinfo.value.__traceback__)
    assert any(f.name == "_boom_on_two" for f in frames)
    feeder.close()


def test_queue_mode_process_exception_carries_remote_cause():
    feeder = PipelinedFeeder(
        _boom_on_two, num_batches=4, mode="process", queue=QueueConfig(capacity=2)
    )
    with pytest.raises(ValueError, match="batch 2") as excinfo:
        list(feeder)
    assert excinfo.value.__cause__ is not None
    feeder.close()


def test_process_mode_with_ingest_source_round_trips(csv_source):
    # File sources drop their cached table on pickling, so each worker
    # process reloads lazily; batches must still match thread mode.
    with PipelinedFeeder(csv_source, mode="process", workers=1) as feeder:
        sizes = [b.size for b in feeder]
    assert sizes == [48] * 6


# ----------------------------------------------------------------------
# queue integration and metrics
# ----------------------------------------------------------------------


def test_drop_oldest_delivers_in_order_subsequence():
    feeder = PipelinedFeeder(
        _identity,
        num_batches=50,
        depth=8,
        workers=2,
        queue=QueueConfig(capacity=2, policy="drop_oldest"),
    )

    got = []
    for value in feeder:
        time.sleep(0.002)  # slow consumer forces drops
        got.append(value)
    feeder.close()
    assert got == sorted(got)  # in-order subsequence
    assert got[-1] == 49  # the newest batch always survives


def test_spill_policy_loses_nothing(tmp_path):
    feeder = PipelinedFeeder(
        _identity,
        num_batches=40,
        depth=8,
        workers=2,
        queue=QueueConfig(
            capacity=8, policy="spill_to_disk", high_watermark=2, low_watermark=1,
            spill_dir=str(tmp_path),
        ),
    )
    got = []
    for value in feeder:
        time.sleep(0.001)
        got.append(value)
    feeder.close()
    assert got == list(range(40))


def test_metrics_accumulate_across_epochs():
    metrics = IngestMetrics()
    feeder = PipelinedFeeder(
        _identity,
        num_batches=5,
        queue=QueueConfig(capacity=2),
        metrics=metrics,
    )
    list(feeder)
    list(feeder)
    feeder.close()
    assert metrics.epochs_total.value == 2
    assert metrics.batches_total.value == 10
    assert metrics.produced_total.value == 10
    registry_names = {name for name, *_ in metrics.registry.families()}
    assert "rap_ingest_queue_wait_seconds" in registry_names


def test_metrics_stall_ratios_identify_slow_consumer():
    metrics = IngestMetrics()
    feeder = PipelinedFeeder(
        _identity,
        num_batches=6,
        queue=QueueConfig(capacity=2),
        metrics=metrics,
    )
    for _ in feeder:
        time.sleep(0.02)  # consumer is the bottleneck's inverse: queue waits
    feeder.close()
    # Producers finish instantly, then stall on the full queue.
    assert metrics.producer_stall_seconds.value > 0.0
    assert metrics.producer_stall_ratio.value > 0.0
