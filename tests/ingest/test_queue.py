"""BackpressureQueue: watermarks, overload policies, close semantics."""

import threading
import time

import pytest

from repro.ingest import BackpressureQueue, QueueClosed


def test_fifo_and_stats():
    q = BackpressureQueue(4)
    for i in range(4):
        q.put(i)
    assert [q.get() for _ in range(4)] == [0, 1, 2, 3]
    stats = q.stats()
    assert stats.puts == 4 and stats.gets == 4
    assert stats.peak_depth == 4 and stats.depth == 0
    assert len(stats.wait_samples) == 4


def test_block_policy_stalls_producer_until_drained():
    q = BackpressureQueue(1, policy="block")
    q.put(0)
    unblocked = threading.Event()

    def producer():
        q.put(1)  # must wait for the consumer
        unblocked.set()

    t = threading.Thread(target=producer)
    t.start()
    time.sleep(0.05)
    assert not unblocked.is_set()
    assert q.get() == 0
    t.join(timeout=5.0)
    assert unblocked.is_set()
    assert q.get() == 1
    assert q.stats().producer_stall_s > 0.0


def test_drop_oldest_bounds_depth_and_keeps_newest():
    q = BackpressureQueue(3, policy="drop_oldest")
    for i in range(10):
        q.put(i)
    assert len(q) == 3
    assert [q.get() for _ in range(3)] == [7, 8, 9]
    assert q.stats().drops == 7


def test_spill_to_disk_bounds_memory_and_preserves_order(tmp_path):
    q = BackpressureQueue(
        8, policy="spill_to_disk", high_watermark=3, low_watermark=1,
        spill_dir=str(tmp_path),
    )
    payload = [{"batch": i, "data": list(range(50))} for i in range(20)]
    peak = 0
    for item in payload:
        q.put(item)
        peak = max(peak, len(q))
    assert peak <= 3  # memory bounded at the high watermark
    assert q.stats().spills == 17
    got = [q.get() for _ in range(20)]
    assert got == payload  # FIFO order survives the disk round-trip
    assert q.stats().restores == 17
    assert not list(tmp_path.glob("spill-*.pkl"))  # all spill files consumed


def test_spill_restores_resume_below_low_watermark(tmp_path):
    q = BackpressureQueue(
        8, policy="spill_to_disk", high_watermark=4, low_watermark=2,
        spill_dir=str(tmp_path),
    )
    for i in range(10):
        q.put(i)
    # Memory holds 0-3 (high watermark), 4-9 spilled; puts never restore.
    assert q.stats().restores == 0
    assert q.get() == 0
    assert q.stats().restores == 0  # depth 3 is still above the low watermark
    assert q.get() == 1  # depth reaches the low watermark -> refill to high
    assert q.stats().restores > 0
    assert [q.get() for _ in range(8)] == [2, 3, 4, 5, 6, 7, 8, 9]


def test_close_wakes_blocked_producer_and_consumer():
    q = BackpressureQueue(1, policy="block")
    q.put(0)
    errors = []

    def blocked_put():
        try:
            q.put(1)
        except QueueClosed:
            errors.append("put")

    def blocked_get():
        try:
            q2.get()
        except QueueClosed:
            errors.append("get")

    t = threading.Thread(target=blocked_put)
    t.start()
    time.sleep(0.02)
    q.close()
    t.join(timeout=5.0)
    assert errors == ["put"]

    q2 = BackpressureQueue(1)
    t2 = threading.Thread(target=blocked_get)
    t2.start()
    time.sleep(0.02)
    q2.close()
    t2.join(timeout=5.0)
    assert not t2.is_alive()
    assert errors == ["put", "get"]


def test_closed_queue_drains_then_raises():
    q = BackpressureQueue(4)
    q.put("a")
    q.put("b")
    q.close()
    with pytest.raises(QueueClosed):
        q.put("c")
    assert q.get() == "a" and q.get() == "b"
    with pytest.raises(QueueClosed):
        q.get()


def test_drain_and_discard_removes_spill_files(tmp_path):
    q = BackpressureQueue(
        4, policy="spill_to_disk", high_watermark=1, low_watermark=0,
        spill_dir=str(tmp_path),
    )
    for i in range(5):
        q.put(i)
    assert list(tmp_path.glob("spill-*.pkl"))
    q.drain_and_discard()
    assert not list(tmp_path.glob("spill-*.pkl"))
    with pytest.raises(QueueClosed):
        q.get()


def test_get_timeout():
    q = BackpressureQueue(2)
    with pytest.raises(TimeoutError):
        q.get(timeout=0.05)


def test_constructor_validation():
    with pytest.raises(ValueError, match="capacity"):
        BackpressureQueue(0)
    with pytest.raises(ValueError, match="policy"):
        BackpressureQueue(2, policy="explode")
    with pytest.raises(ValueError, match="high watermark"):
        BackpressureQueue(2, high_watermark=5)
    with pytest.raises(ValueError, match="low watermark"):
        BackpressureQueue(4, high_watermark=2, low_watermark=3)
