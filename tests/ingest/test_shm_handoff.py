"""Shared-memory batch handoff for process-mode ingest (DESIGN.md §17).

Covers the encode/decode round trip, the exactly-one-unlink lifecycle on
every path a handle can take (delivered, dropped by overload policy,
abandoned mid-epoch, spilled to disk), and the transparent pickle
fallback when shared memory is unavailable.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.ingest import PipelinedFeeder, QueueConfig
from repro.ingest.queue import BackpressureQueue
from repro.ingest.shmio import (
    ShmBatchHandle,
    decode_batch,
    dispose_handle,
    encode_batch,
    leaked_ingest_segments,
    shm_available,
)
from repro.ingest.sources import SyntheticSource
from repro.preprocessing import KAGGLE_SCHEMA, SyntheticCriteoDataset

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared-memory handoff unavailable on this host"
)


def _assert_no_leaks() -> None:
    # Unlinks happen in the parent; nothing here is asynchronous, but the
    # final worker exits can lag a beat on slow CI.
    for _ in range(50):
        if not leaked_ingest_segments():
            return
        time.sleep(0.1)
    assert leaked_ingest_segments() == []


def _assert_batches_equal(a, b) -> None:
    assert set(a.dense) == set(b.dense) and set(a.sparse) == set(b.sparse)
    for name in a.dense:
        x, y = a.dense[name].values, b.dense[name].values
        assert x.dtype == y.dtype
        np.testing.assert_array_equal(x, y)
    for name in a.sparse:
        x, y = a.sparse[name], b.sparse[name]
        assert x.hash_size == y.hash_size
        assert np.array_equal(x.offsets, y.offsets)
        assert np.array_equal(x.values, y.values)


def test_encode_decode_round_trip():
    batch = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=3).batch(128, index=0)
    handle = encode_batch(batch)
    assert handle.nbytes > 0
    out = decode_batch(handle)
    _assert_batches_equal(batch, out)
    # decode unlinked the name eagerly: nothing left to sweep, and a
    # second dispose is a harmless no-op.
    assert not dispose_handle(handle)
    _assert_no_leaks()


def test_dispose_without_decode_unlinks():
    batch = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=5).batch(64, index=0)
    handle = encode_batch(batch)
    assert dispose_handle(handle)
    _assert_no_leaks()


def test_process_feeder_delivers_identical_batches():
    src = SyntheticSource(KAGGLE_SCHEMA, batch_size=64, num_batches=5, seed=7)
    ref = [src(i) for i in range(5)]
    with PipelinedFeeder(src, mode="process", workers=2, depth=2) as feeder:
        assert feeder.shm_handoff
        got = list(feeder)
        assert len(got) == 5
        for r, g in zip(ref, got):
            _assert_batches_equal(r, g)
        # Multi-use lifecycle survives the shm path too.
        assert len(list(feeder)) == 5
    _assert_no_leaks()


@pytest.mark.parametrize("policy", ["block", "drop_oldest", "spill_to_disk"])
def test_abandoned_epoch_leaks_nothing(policy):
    src = SyntheticSource(KAGGLE_SCHEMA, batch_size=64, num_batches=8, seed=11)
    feeder = PipelinedFeeder(
        src,
        mode="process",
        workers=2,
        depth=3,
        queue=QueueConfig(capacity=2, policy=policy),
    )
    it = iter(feeder)
    next(it)
    it.close()  # consumer walks away mid-epoch
    feeder.close()
    _assert_no_leaks()


def test_futures_mode_abandon_leaks_nothing():
    src = SyntheticSource(KAGGLE_SCHEMA, batch_size=64, num_batches=8, seed=13)
    feeder = PipelinedFeeder(src, mode="process", workers=2, depth=3)
    it = iter(feeder)
    next(it)
    it.close()
    feeder.close()
    _assert_no_leaks()


def test_queue_dispose_hook_on_drop_and_drain():
    disposed = []
    q = BackpressureQueue(2, policy="drop_oldest", dispose=disposed.append)
    q.put("a")
    q.put("b")
    q.put("c")  # evicts "a"
    assert disposed == ["a"]
    q.drain_and_discard()
    assert disposed == ["a", "b", "c"]


def test_queue_dispose_hook_covers_spill_files(tmp_path):
    disposed = []
    q = BackpressureQueue(
        2,
        policy="spill_to_disk",
        high_watermark=2,
        spill_dir=str(tmp_path),
        dispose=disposed.append,
    )
    for item in ("a", "b", "c", "d"):
        q.put(item)
    assert q.stats().spills == 2
    q.drain_and_discard()
    assert sorted(disposed) == ["a", "b", "c", "d"]
    assert not list(tmp_path.glob("spill-*.pkl"))


def test_pickle_fallback_when_disabled():
    code = (
        "import os\n"
        "os.environ['RAP_DISABLE_SHM_INGEST'] = '1'\n"
        "from repro.ingest import PipelinedFeeder\n"
        "from repro.ingest.sources import SyntheticSource\n"
        "from repro.preprocessing import KAGGLE_SCHEMA\n"
        "src = SyntheticSource(KAGGLE_SCHEMA, batch_size=32, num_batches=3, seed=1)\n"
        "f = PipelinedFeeder(src, mode='process', workers=1)\n"
        "assert f.shm_handoff is False\n"
        "assert len(list(f)) == 3\n"
        "f.close()\n"
    )
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src_dir), env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_handle_is_picklable():
    batch = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=17).batch(32, index=0)
    handle = encode_batch(batch)
    try:
        import pickle

        clone = pickle.loads(pickle.dumps(handle))
        assert isinstance(clone, ShmBatchHandle)
        assert clone.name == handle.name and clone.layout == handle.layout
    finally:
        dispose_handle(handle)
    _assert_no_leaks()
