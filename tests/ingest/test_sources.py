"""Batch sources: resolution, round-trips, sharding, mixing, pacing."""

import numpy as np
import pytest

from repro.ingest import (
    IngestError,
    MixedSource,
    PacedSource,
    build_source,
    source,
    write_csv,
    write_jsonl,
    write_replay_log,
)
from repro.preprocessing import KAGGLE_SCHEMA, SyntheticCriteoDataset


@pytest.fixture(scope="module")
def batches():
    src = source("synthetic://kaggle?batch=96&batches=5&seed=17")
    return [src.batch(i) for i in range(5)]


def _assert_batches_equal(got, want):
    assert set(got.dense) == set(want.dense)
    assert set(got.sparse) == set(want.sparse)
    for name, col in want.dense.items():
        np.testing.assert_allclose(
            got.dense[name].values, col.values, rtol=1e-6, equal_nan=True
        )
    for name, col in want.sparse.items():
        assert np.array_equal(got.sparse[name].offsets, col.offsets)
        assert np.array_equal(got.sparse[name].values, col.values)


def test_synthetic_source_matches_generator():
    src = source("synthetic://kaggle?batch=64&batches=3&seed=9&start=2")
    want = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=9).batch(64, index=2)
    _assert_batches_equal(src.batch(0), want)
    assert len(src) == 3
    assert src.rows_per_batch == 64


def test_synthetic_rejects_unknown_base_and_params():
    with pytest.raises(IngestError, match="kaggle or terabyte"):
        source("synthetic://mnist?batch=64")
    with pytest.raises(IngestError, match="unknown parameter"):
        source("synthetic://kaggle?bacth=64")


def test_csv_round_trip(tmp_path, batches):
    path = tmp_path / "day0.csv"
    rows = write_csv(str(path), batches)
    assert rows == 5 * 96
    src = source(f"csv://{path}?batch=96")
    assert len(src) == 5
    for i, want in enumerate(batches):
        _assert_batches_equal(src.batch(i), want)


def test_jsonl_round_trip(tmp_path, batches):
    path = tmp_path / "rows.jsonl"
    write_jsonl(str(path), batches)
    src = source(f"jsonl://{path}?batch=96")
    assert len(src) == 5
    _assert_batches_equal(src.batch(4), batches[4])


def test_replay_round_trip_and_pacing(tmp_path, batches):
    path = tmp_path / "run.replay.jsonl"
    write_replay_log(str(path), batches, [0.0, 0.1, 0.3, 0.35, 0.75])
    src = source(f"replay://{path}?speed=10")
    assert len(src) == 5
    assert src.delay_s(0) == 0.0
    assert src.delay_s(2) == pytest.approx(0.02)  # (0.3 - 0.1) / 10
    _assert_batches_equal(src.batch(3), batches[3])
    unpaced = source(f"replay://{path}?pace=0")
    assert unpaced.delay_s(2) == 0.0
    assert src.rows_per_batch == 96


def test_replay_rejects_wrong_header_and_bad_timestamps(tmp_path, batches):
    bad = tmp_path / "not.replay.jsonl"
    bad.write_text('{"type": "something-else"}\n')
    with pytest.raises(IngestError, match="rap-replay"):
        len(source(f"replay://{bad}"))
    backwards = tmp_path / "backwards.replay.jsonl"
    write_replay_log(str(backwards), batches[:2], [0.0, 0.5])
    lines = backwards.read_text().splitlines()
    backwards.write_text("\n".join([lines[0], lines[2], lines[1]]) + "\n")
    with pytest.raises(IngestError, match="non-decreasing"):
        len(source(f"replay://{backwards}"))


def test_csv_sharding_is_strided_and_seekable(tmp_path, batches):
    path = tmp_path / "sharded.csv"
    write_csv(str(path), batches)
    full = np.concatenate([b.dense["dense_0"].values for b in batches])
    for k in range(3):
        shard = source(f"csv://{path}?batch=32&shard={k}/3")
        got = np.concatenate(
            [shard.batch(i).dense["dense_0"].values for i in range(len(shard))]
        )
        want = full[k::3][: len(got)]
        np.testing.assert_allclose(got, want, rtol=1e-6, equal_nan=True)


def test_shard_smaller_than_one_batch_is_an_error(tmp_path, batches):
    path = tmp_path / "tiny.csv"
    write_csv(str(path), batches[:1])
    with pytest.raises(IngestError, match="fewer than one batch"):
        len(source(f"csv://{path}?batch=96&shard=0/2"))


def test_missing_file_is_a_clear_error():
    with pytest.raises(IngestError, match="cannot read"):
        source("csv:///nonexistent/no.csv?batch=4").batch(0)


def test_parquet_is_gated_without_pyarrow(tmp_path):
    try:
        import pyarrow  # noqa: F401

        pytest.skip("pyarrow installed; gating not observable")
    except ImportError:
        pass
    with pytest.raises(IngestError, match="pyarrow"):
        source(f"parquet://{tmp_path}/x.parquet?batch=4").batch(0)


def test_mixed_source_is_deterministic_and_seekable():
    a = source("synthetic://kaggle?batch=32&batches=4&seed=1")
    b = source("synthetic://kaggle?batch=32&batches=4&seed=2")
    mixed = MixedSource([a, b], [3.0, 1.0], seed=42)
    assert len(mixed) == 8
    again = MixedSource([a, b], [3.0, 1.0], seed=42)
    for i in (0, 3, 7, 1):  # out-of-order access must not change results
        _assert_batches_equal(mixed.batch(i), again.batch(i))
    assert mixed.rows_per_batch == 32


def test_mixed_weights_bias_the_draw():
    a = source("synthetic://kaggle?batch=16&batches=50&seed=1")
    b = source("synthetic://kaggle?batch=16&batches=50&seed=2")
    mixed = MixedSource([a, b], [9.0, 1.0], seed=7)
    from_a = sum(int(mixed._assignment[i]) == 0 for i in range(len(mixed)))
    assert from_a > len(mixed) * 0.7


def test_build_source_comma_list_and_weights():
    single = build_source("synthetic://kaggle?batch=16&batches=2")
    assert len(single) == 2
    mixed = build_source(
        "synthetic://kaggle?batch=16&batches=2&weight=2,"
        "synthetic://kaggle?batch=16&batches=2&seed=5",
        seed=3,
    )
    assert isinstance(mixed, MixedSource)
    assert mixed.weights == [2.0, 1.0]
    with pytest.raises(IngestError, match="unknown source scheme"):
        build_source("carrier-pigeon://x")


def test_paced_source_overrides_delays():
    inner = source("synthetic://kaggle?batch=16&batches=4&io_delay_ms=100")
    paced = PacedSource(inner, [0.0, 0.01])
    assert paced.delay_s(0) == 0.0
    assert paced.delay_s(1) == 0.01
    assert paced.delay_s(3) == 0.01  # past the schedule: last delay repeats
    assert paced.batch(2).size == 16
    with pytest.raises(IngestError, match="non-negative"):
        PacedSource(inner, [-0.1])


def test_sources_pickle_without_cached_tables(tmp_path, batches):
    import pickle

    path = tmp_path / "p.csv"
    write_csv(str(path), batches)
    src = source(f"csv://{path}?batch=96")
    src.batch(0)  # force the load
    clone = pickle.loads(pickle.dumps(src))
    assert clone._table is None  # cache dropped, reloads lazily
    _assert_batches_equal(clone.batch(1), batches[1])
