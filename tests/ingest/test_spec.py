"""Source-spec grammar: parsing, typed params, and error quality."""

import pytest

from repro.ingest import IngestError, parse_spec, split_specs


def test_parses_scheme_target_params():
    spec = parse_spec("csv:///data/day0.csv?batch=512&shard=3/8")
    assert spec.scheme == "csv"
    assert spec.target == "/data/day0.csv"
    assert spec.int_param("batch") == 512
    assert spec.shard_param() == (3, 8)


def test_relative_target_keeps_netloc_and_path():
    spec = parse_spec("jsonl://rel/path/rows.jsonl?batch=64")
    assert spec.target == "rel/path/rows.jsonl"


def test_scheme_is_case_insensitive():
    assert parse_spec("CSV:///x.csv").scheme == "csv"


def test_typed_params_defaults_and_errors():
    spec = parse_spec("synthetic://kaggle?batch=64&speed=1.5&pace=yes")
    assert spec.int_param("missing", 7) == 7
    assert spec.float_param("speed") == 1.5
    assert spec.bool_param("pace") is True
    assert spec.shard_param() == (0, 1)
    with pytest.raises(IngestError, match="not an integer"):
        parse_spec("csv:///x?batch=abc").int_param("batch")
    with pytest.raises(IngestError, match="not a number"):
        parse_spec("csv:///x?speed=fast").float_param("speed")
    with pytest.raises(IngestError, match="not a boolean"):
        parse_spec("csv:///x?pace=perhaps").bool_param("pace")


@pytest.mark.parametrize("bad", ["3", "3/", "/8", "8/3", "-1/4", "a/b"])
def test_shard_param_rejects_malformed(bad):
    with pytest.raises(IngestError):
        parse_spec(f"csv:///x?shard={bad}").shard_param()


def test_rejects_empty_missing_scheme_and_duplicates():
    with pytest.raises(IngestError, match="empty"):
        parse_spec("  ")
    with pytest.raises(IngestError, match="scheme"):
        parse_spec("/just/a/path")
    with pytest.raises(IngestError, match="duplicate"):
        parse_spec("csv:///x?batch=1&batch=2")


def test_unknown_params_are_rejected_with_known_list():
    spec = parse_spec("csv:///x?bacth=512")
    with pytest.raises(IngestError, match="bacth.*known"):
        spec.require_known({"batch", "shard"})


def test_split_specs():
    assert split_specs("a://x, b://y") == ["a://x", "b://y"]
    with pytest.raises(IngestError, match="empty spec"):
        split_specs("a://x,,b://y")
