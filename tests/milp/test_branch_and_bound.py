"""Unit tests for the branch-and-bound MILP solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.model import MilpProblem


def knapsack(values, weights, capacity):
    p = MilpProblem(maximize=True)
    xs = [p.add_binary(f"x{i}") for i in range(len(values))]
    p.add_constraint({x: w for x, w in zip(xs, weights)}, "<=", capacity)
    p.set_objective({x: v for x, v in zip(xs, values)})
    return p


def brute_force_knapsack(values, weights, capacity):
    best = 0.0
    for mask in itertools.product([0, 1], repeat=len(values)):
        if sum(m * w for m, w in zip(mask, weights)) <= capacity:
            best = max(best, sum(m * v for m, v in zip(mask, values)))
    return best


class TestBranchAndBound:
    def test_trivial_max(self):
        p = MilpProblem(maximize=True)
        x, y = p.add_binary("x"), p.add_binary("y")
        p.add_constraint({x: 1.0, y: 1.0}, "<=", 1.0)
        p.set_objective({x: 1.0, y: 2.0})
        sol = BranchAndBoundSolver().solve(p)
        assert sol.status == "optimal"
        assert sol.objective == pytest.approx(2.0)
        np.testing.assert_allclose(sol.x, [0.0, 1.0])

    def test_minimization(self):
        p = MilpProblem(maximize=False)
        x, y = p.add_binary("x"), p.add_binary("y")
        p.add_constraint({x: 1.0, y: 1.0}, ">=", 1.0)
        p.set_objective({x: 3.0, y: 5.0})
        sol = BranchAndBoundSolver().solve(p)
        assert sol.objective == pytest.approx(3.0)

    def test_infeasible(self):
        p = MilpProblem()
        x = p.add_binary("x")
        p.add_constraint({x: 1.0}, ">=", 2.0)
        sol = BranchAndBoundSolver().solve(p)
        assert sol.status == "infeasible"
        assert not sol.ok

    def test_classic_knapsack(self):
        values = [60, 100, 120]
        weights = [10, 20, 30]
        sol = BranchAndBoundSolver().solve(knapsack(values, weights, 50))
        assert sol.objective == pytest.approx(220.0)

    def test_integer_variable_with_wider_bounds(self):
        p = MilpProblem(maximize=True)
        x = p.add_var("x", lb=0.0, ub=10.0, integer=True)
        p.add_constraint({x: 2.0}, "<=", 7.0)  # x <= 3.5 -> integer 3
        p.set_objective({x: 1.0})
        sol = BranchAndBoundSolver().solve(p)
        assert sol.objective == pytest.approx(3.0)

    def test_mixed_integer_continuous(self):
        p = MilpProblem(maximize=True)
        x = p.add_binary("x")
        y = p.add_var("y", lb=0.0, ub=1.0, integer=False)
        p.add_constraint({x: 1.0, y: 1.0}, "<=", 1.5)
        p.set_objective({x: 2.0, y: 1.0})
        sol = BranchAndBoundSolver().solve(p)
        assert sol.objective == pytest.approx(2.5)
        assert sol.x[0] == pytest.approx(1.0)

    def test_warm_start_used_as_incumbent(self):
        p = knapsack([5, 4], [3, 3], 3)
        warm = np.array([1.0, 0.0])
        sol = BranchAndBoundSolver().solve(p, warm_start=warm)
        assert sol.objective == pytest.approx(5.0)

    def test_infeasible_warm_start_ignored(self):
        p = knapsack([5, 4], [3, 3], 3)
        warm = np.array([1.0, 1.0])  # violates capacity
        sol = BranchAndBoundSolver().solve(p, warm_start=warm)
        assert sol.objective == pytest.approx(5.0)

    def test_node_limit_returns_feasible(self):
        rng = np.random.default_rng(0)
        values = rng.integers(1, 100, 25).tolist()
        weights = rng.integers(1, 50, 25).tolist()
        p = knapsack(values, weights, 200)
        sol = BranchAndBoundSolver(node_limit=3).solve(p)
        assert sol.ok
        assert sol.status in ("optimal", "feasible")

    @settings(max_examples=15, deadline=None)
    @given(
        data=st.lists(
            st.tuples(st.integers(1, 30), st.integers(1, 20)), min_size=1, max_size=8
        ),
        capacity=st.integers(min_value=1, max_value=60),
    )
    def test_matches_brute_force(self, data, capacity):
        """Property: B&B matches exhaustive search on small knapsacks."""
        values = [v for v, _ in data]
        weights = [w for _, w in data]
        sol = BranchAndBoundSolver().solve(knapsack(values, weights, capacity))
        assert sol.ok
        assert sol.objective == pytest.approx(brute_force_knapsack(values, weights, capacity))


def fractional_root_problem() -> MilpProblem:
    """Feasible MILP whose floor-snapped root relaxation is infeasible."""
    p = MilpProblem(maximize=False)
    x, y = p.add_binary("x"), p.add_binary("y")
    p.add_constraint({x: 1.0, y: 1.0}, ">=", 1.5)  # forces x = y = 1 integrally
    p.set_objective({x: 1.0, y: 1.0})
    return p


class TestStatusGapContract:
    """Regression pins for the terminal status / optimality-gap contract.

    The bug: a warm-start-only incumbent (limit hit at zero nodes) used to
    come back as "optimal" with ``gap=None`` -- claiming a proof the search
    never produced. Every limit exit with an incumbent must instead report
    "feasible" with a *finite* gap, and limit exits without an incumbent
    must keep ``x``/``objective``/``gap`` all ``None``.
    """

    def test_warm_start_only_incumbent_is_feasible_not_optimal(self):
        p = knapsack([5, 4], [3, 3], 3)
        warm = np.array([0.0, 1.0])  # feasible but suboptimal (4 < 5)
        sol = BranchAndBoundSolver(node_limit=0).solve(p, warm_start=warm)
        assert sol.status == "feasible"
        assert sol.nodes_explored == 0
        assert sol.objective == pytest.approx(4.0)
        assert sol.gap is not None and np.isfinite(sol.gap)
        # Root LP bound is the true optimum 5 (minimization form -5), so
        # the reported gap is exactly the incumbent's suboptimality.
        assert sol.gap == pytest.approx(1.0)

    def test_time_limit_with_warm_start_is_feasible(self):
        p = knapsack([5, 4], [3, 3], 3)
        warm = np.array([1.0, 0.0])
        sol = BranchAndBoundSolver(time_limit_s=0.0).solve(p, warm_start=warm)
        assert sol.status == "feasible"
        assert sol.ok
        assert sol.gap is not None and sol.gap >= 0.0

    def test_node_limit_without_incumbent(self):
        sol = BranchAndBoundSolver(node_limit=0).solve(fractional_root_problem())
        assert sol.status == "node_limit"
        assert sol.x is None
        assert sol.objective is None
        assert sol.gap is None
        assert not sol.ok

    def test_time_limit_without_incumbent(self):
        sol = BranchAndBoundSolver(time_limit_s=0.0).solve(fractional_root_problem())
        assert sol.status == "time_limit"
        assert sol.x is None
        assert sol.gap is None

    def test_infeasible_has_no_gap(self):
        p = MilpProblem()
        x = p.add_binary("x")
        p.add_constraint({x: 1.0}, ">=", 2.0)
        sol = BranchAndBoundSolver().solve(p)
        assert sol.status == "infeasible"
        assert sol.x is None and sol.objective is None and sol.gap is None

    def test_optimal_reports_zero_gap(self):
        sol = BranchAndBoundSolver().solve(knapsack([5, 4], [3, 3], 3))
        assert sol.status == "optimal"
        assert sol.gap == 0.0

    def test_feasible_never_claims_optimal(self):
        """A limited solve on a hard instance never reports a free proof."""
        rng = np.random.default_rng(7)
        values = rng.integers(1, 100, 30).tolist()
        weights = rng.integers(1, 50, 30).tolist()
        p = knapsack(values, weights, 300)
        sol = BranchAndBoundSolver(node_limit=2).solve(
            p, warm_start=np.zeros(30)
        )
        if sol.status == "feasible":
            assert sol.gap is not None and np.isfinite(sol.gap) and sol.gap >= 0.0
        else:
            assert sol.status == "optimal" and sol.gap == 0.0
