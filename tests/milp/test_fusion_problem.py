"""Unit tests for the horizontal-fusion MILP formulation and heuristics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.milp.fusion_problem import (
    FusionAssignment,
    FusionInstance,
    build_fusion_milp,
    solve_fusion,
)


def chain(types):
    """One linear chain of ops with the given types."""
    return FusionInstance(
        op_types=list(types),
        deps=[(i, i + 1) for i in range(len(types) - 1)],
    )


class TestFusionInstance:
    def test_rejects_out_of_range_dep(self):
        with pytest.raises(IndexError):
            FusionInstance(op_types=["A"], deps=[(0, 1)])

    def test_rejects_self_dep(self):
        with pytest.raises(ValueError):
            FusionInstance(op_types=["A", "A"], deps=[(0, 0)])

    def test_asap_levels_chain(self):
        inst = chain("ABC")
        assert inst.asap_levels() == [0, 1, 2]

    def test_asap_levels_diamond(self):
        inst = FusionInstance(op_types=list("ABCD"), deps=[(0, 1), (0, 2), (1, 3), (2, 3)])
        assert inst.asap_levels() == [0, 1, 1, 2]

    def test_cycle_detected(self):
        inst = FusionInstance(op_types=["A", "B"], deps=[(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            inst.asap_levels()

    def test_reachable_pairs_transitive(self):
        inst = chain("ABC")
        assert (0, 2) in inst.reachable_pairs()


class TestFusionAssignment:
    def test_validates_dependencies(self):
        inst = chain("AB")
        with pytest.raises(ValueError):
            FusionAssignment(inst, steps=[1, 0])
        with pytest.raises(ValueError):
            FusionAssignment(inst, steps=[0, 0])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            FusionAssignment(chain("AB"), steps=[0])

    def test_groups(self):
        inst = FusionInstance(op_types=["A", "A", "B"])
        a = FusionAssignment(inst, steps=[0, 0, 0])
        groups = a.groups()
        assert groups[("A", 0)] == [0, 1]
        assert a.fused_pair_count() == 1
        assert a.quadratic_objective() == 5  # 2^2 + 1^2
        assert a.max_fusion_degree() == 2

    def test_ordered_groups_by_step(self):
        inst = FusionInstance(op_types=["A", "B"], deps=[(0, 1)])
        a = FusionAssignment(inst, steps=[0, 1])
        ordered = a.ordered_groups()
        assert ordered[0][1] == 0 and ordered[1][1] == 1


class TestSolveFusion:
    def test_empty_instance(self):
        a = solve_fusion(FusionInstance(op_types=[]))
        assert a.steps == []
        assert a.method == "empty"

    def test_independent_same_type_all_fused(self):
        inst = FusionInstance(op_types=["A"] * 6)
        a = solve_fusion(inst, exact=False)
        assert a.max_fusion_degree() == 6
        assert a.num_steps == 1

    def test_dependent_same_type_cannot_fuse(self):
        inst = chain("AA")
        a = solve_fusion(inst, exact=True)
        assert a.max_fusion_degree() == 1
        assert a.steps[0] < a.steps[1]

    def test_paper_conflict_case_exact(self):
        """FirstX->SigridHash vs SigridHash->FirstX (§6.1): the two fusion
        opportunities conflict -- aligning both pairs is impossible because
        it would need steps[0] == steps[3] and steps[1] == steps[2] against
        opposite dependency directions. The optimum delays one chain to
        fuse exactly one pair, which greedy ASAP cannot find."""
        inst = FusionInstance(
            op_types=["FirstX", "SigridHash", "SigridHash", "FirstX"],
            deps=[(0, 1), (2, 3)],
        )
        greedy = solve_fusion(inst, exact=False)
        exact = solve_fusion(inst, exact=True)
        assert greedy.fused_pair_count() == 0
        assert exact.fused_pair_count() == 1
        # One same-type pair shares a step in the exact plan.
        assert exact.steps[1] == exact.steps[2] or exact.steps[0] == exact.steps[3]

    def test_exact_never_worse_than_greedy(self):
        inst = FusionInstance(
            op_types=["A", "B", "B", "A", "A", "B"],
            deps=[(0, 1), (2, 3), (4, 5)],
        )
        greedy = solve_fusion(inst, exact=False)
        exact = solve_fusion(inst, exact=True)
        assert exact.fused_pair_count() >= greedy.fused_pair_count()

    def test_heuristic_on_large_instance(self):
        types = (["A", "B", "C"] * 40)[:120]
        deps = [(i, i + 1) for i in range(0, 117, 3)]
        inst = FusionInstance(op_types=types, deps=deps)
        a = solve_fusion(inst)  # auto: too big for exact
        assert a.method in ("heuristic", "heuristic_fallback")
        a.validate()

    def test_milp_build_shapes(self):
        inst = chain("AB")
        problem, x = build_fusion_milp(inst)
        assert len(x) == 2
        # Depth bound (2) plus one slack step.
        assert len(x[0]) == 3
        assert problem.num_vars >= 6

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_random_dags_produce_valid_assignments(self, data):
        """Property: any random DAG yields a dependency-respecting plan."""
        n = data.draw(st.integers(min_value=1, max_value=12))
        types = data.draw(
            st.lists(st.sampled_from(["A", "B", "C"]), min_size=n, max_size=n)
        )
        deps = []
        for j in range(1, n):
            for i in range(j):
                if data.draw(st.booleans()):
                    deps.append((i, j))
        inst = FusionInstance(op_types=types, deps=deps)
        a = solve_fusion(inst, exact=False)
        a.validate()  # raises on violation
        assert sorted(a.groups().keys()) == sorted(set(a.groups().keys()))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=6))
    def test_exact_matches_quadratic_optimum_on_independent_ops(self, n):
        inst = FusionInstance(op_types=["A"] * n)
        a = solve_fusion(inst, exact=True)
        assert a.quadratic_objective() == n * n
