"""Unit tests for binary-product linearization."""

import itertools

import pytest

from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.linearize import add_binary_product, add_pairwise_products
from repro.milp.model import MilpProblem


class TestAddBinaryProduct:
    def test_product_behaves_as_and(self):
        """Maximizing y with McCormick constraints forces y = x1 * x2."""
        for want_x1, want_x2 in itertools.product([0, 1], repeat=2):
            p = MilpProblem(maximize=True)
            x1, x2 = p.add_binary("x1"), p.add_binary("x2")
            # Pin x1, x2 with equality constraints.
            p.add_constraint({x1: 1.0}, "==", float(want_x1))
            p.add_constraint({x2: 1.0}, "==", float(want_x2))
            y = add_binary_product(p, x1, x2, "y")
            p.set_objective({y: 1.0})
            sol = BranchAndBoundSolver().solve(p)
            assert sol.objective == pytest.approx(float(want_x1 and want_x2))

    def test_product_variable_is_continuous(self):
        p = MilpProblem()
        x1, x2 = p.add_binary("x1"), p.add_binary("x2")
        y = add_binary_product(p, x1, x2, "y")
        assert not y.integer

    def test_constraints_added(self):
        p = MilpProblem()
        x1, x2 = p.add_binary("x1"), p.add_binary("x2")
        before = p.num_constraints
        add_binary_product(p, x1, x2, "y")
        assert p.num_constraints == before + 3


class TestAddPairwiseProducts:
    def test_pair_count(self):
        p = MilpProblem()
        xs = [p.add_binary(f"x{i}") for i in range(5)]
        ys = add_pairwise_products(p, xs, "y")
        assert len(ys) == 10

    def test_empty_and_single(self):
        p = MilpProblem()
        assert add_pairwise_products(p, [], "y") == []
        x = p.add_binary("x")
        assert add_pairwise_products(p, [x], "y") == []
