"""Unit tests for the MILP modeling layer."""

import numpy as np
import pytest

from repro.milp.model import MilpProblem, Variable


class TestVariable:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Variable(index=0, name="x", lb=1.0, ub=0.0)


class TestMilpProblem:
    def test_add_var_indices(self):
        p = MilpProblem()
        x = p.add_var("x")
        y = p.add_var("y")
        assert (x.index, y.index) == (0, 1)
        assert p.num_vars == 2

    def test_duplicate_names_rejected(self):
        p = MilpProblem()
        p.add_var("x")
        with pytest.raises(ValueError):
            p.add_var("x")

    def test_add_binary(self):
        p = MilpProblem()
        b = p.add_binary("b")
        assert b.integer and b.lb == 0.0 and b.ub == 1.0

    def test_bad_sense_rejected(self):
        p = MilpProblem()
        x = p.add_var("x")
        with pytest.raises(ValueError):
            p.add_constraint({x: 1.0}, "<", 1.0)

    def test_zero_coefficients_dropped(self):
        p = MilpProblem()
        x, y = p.add_var("x"), p.add_var("y")
        con = p.add_constraint({x: 1.0, y: 0.0}, "<=", 1.0)
        assert len(con.coeffs) == 1

    def test_to_arrays_minimization_sign(self):
        p = MilpProblem(maximize=True)
        x = p.add_var("x")
        p.set_objective({x: 3.0})
        arrays = p.to_arrays()
        assert arrays["c"][0] == -3.0

    def test_to_arrays_ge_flipped(self):
        p = MilpProblem()
        x = p.add_var("x")
        p.add_constraint({x: 2.0}, ">=", 4.0)
        arrays = p.to_arrays()
        assert arrays["A_ub"][0][0] == -2.0
        assert arrays["b_ub"][0] == -4.0

    def test_to_arrays_eq_separate(self):
        p = MilpProblem()
        x = p.add_var("x")
        p.add_constraint({x: 1.0}, "==", 1.0)
        arrays = p.to_arrays()
        assert arrays["A_ub"] is None
        assert arrays["A_eq"].shape == (1, 1)

    def test_objective_value(self):
        p = MilpProblem()
        x, y = p.add_var("x"), p.add_var("y")
        p.set_objective({x: 2.0, y: 5.0})
        assert p.objective_value(np.array([1.0, 1.0])) == 7.0

    def test_add_objective_term_accumulates(self):
        p = MilpProblem()
        x = p.add_var("x")
        p.add_objective_term(x, 1.0)
        p.add_objective_term(x, 2.0)
        assert p.objective_value(np.array([1.0])) == 3.0

    def test_is_feasible_checks_bounds(self):
        p = MilpProblem()
        p.add_var("x", lb=0.0, ub=1.0)
        assert p.is_feasible(np.array([0.5 + 1e-9])) is False  # integrality
        assert p.is_feasible(np.array([1.0]))
        assert not p.is_feasible(np.array([2.0]))

    def test_is_feasible_checks_constraints(self):
        p = MilpProblem()
        x, y = p.add_binary("x"), p.add_binary("y")
        p.add_constraint({x: 1.0, y: 1.0}, "<=", 1.0)
        assert p.is_feasible(np.array([1.0, 0.0]))
        assert not p.is_feasible(np.array([1.0, 1.0]))

    def test_is_feasible_continuous_vars(self):
        p = MilpProblem()
        p.add_var("x", lb=0.0, ub=1.0, integer=False)
        assert p.is_feasible(np.array([0.5]))
