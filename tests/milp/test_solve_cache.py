"""Tests for the content-addressed MILP solve cache."""

import json

import numpy as np
import pytest

from repro.milp.branch_and_bound import BranchAndBoundSolver, MilpSolution
from repro.milp.model import MilpProblem
from repro.milp.solve_cache import SolveCache, problem_fingerprint


def knapsack(values, weights, capacity) -> MilpProblem:
    p = MilpProblem(maximize=True)
    xs = [p.add_binary(f"x{i}") for i in range(len(values))]
    p.add_constraint({x: w for x, w in zip(xs, weights)}, "<=", capacity)
    p.set_objective({x: v for x, v in zip(xs, values)})
    return p


def fingerprint(problem, **overrides) -> str:
    kwargs = dict(
        node_limit=100, time_limit_s=10.0, integrality_tol=1e-6, gap_tol=1e-9
    )
    kwargs.update(overrides)
    return problem_fingerprint(problem, **kwargs)


class TestProblemFingerprint:
    def test_deterministic(self):
        p = knapsack([5, 4], [3, 3], 3)
        assert fingerprint(p) == fingerprint(knapsack([5, 4], [3, 3], 3))

    def test_changes_with_problem_content(self):
        base = fingerprint(knapsack([5, 4], [3, 3], 3))
        assert fingerprint(knapsack([5, 9], [3, 3], 3)) != base  # objective
        assert fingerprint(knapsack([5, 4], [3, 1], 3)) != base  # constraint
        assert fingerprint(knapsack([5, 4], [3, 3], 4)) != base  # rhs

    def test_changes_with_solver_limits(self):
        p = knapsack([5, 4], [3, 3], 3)
        base = fingerprint(p)
        assert fingerprint(p, node_limit=99) != base
        assert fingerprint(p, time_limit_s=1.0) != base
        assert fingerprint(p, integrality_tol=1e-4) != base
        assert fingerprint(p, gap_tol=1e-6) != base

    def test_changes_with_warm_start(self):
        p = knapsack([5, 4], [3, 3], 3)
        assert fingerprint(p) != fingerprint(p, warm_start=np.array([1.0, 0.0]))
        assert fingerprint(p, warm_start=np.array([1.0, 0.0])) != fingerprint(
            p, warm_start=np.array([0.0, 1.0])
        )


class TestSolveCache:
    def test_hit_is_equivalent_to_resolve(self):
        cache = SolveCache()
        solver = BranchAndBoundSolver(cache=cache)
        p = knapsack([5, 4], [3, 3], 3)
        first = solver.solve(p)
        second = solver.solve(p)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert second.status == first.status
        assert second.objective == first.objective
        assert second.gap == first.gap
        np.testing.assert_array_equal(second.x, first.x)

    def test_different_problems_do_not_collide(self):
        cache = SolveCache()
        solver = BranchAndBoundSolver(cache=cache)
        a = solver.solve(knapsack([5, 4], [3, 3], 3))
        b = solver.solve(knapsack([9, 4], [3, 3], 3))
        assert a.objective == pytest.approx(5.0)
        assert b.objective == pytest.approx(9.0)
        assert cache.stats.hits == 0

    def test_disk_tier_survives_new_process_state(self, tmp_path):
        p = knapsack([5, 4], [3, 3], 3)
        first = BranchAndBoundSolver(cache=SolveCache(tmp_path)).solve(p)
        # A fresh cache over the same directory models a process restart.
        warm_cache = SolveCache(tmp_path)
        second = BranchAndBoundSolver(cache=warm_cache).solve(p)
        assert warm_cache.stats.hits == 1
        assert second.objective == first.objective
        np.testing.assert_array_equal(second.x, first.x)

    def test_torn_disk_entry_is_a_miss(self, tmp_path):
        p = knapsack([5, 4], [3, 3], 3)
        BranchAndBoundSolver(cache=SolveCache(tmp_path)).solve(p)
        for f in tmp_path.glob("*.milp.json"):
            f.write_text(f.read_text()[:10])  # simulate a torn write
        cache = SolveCache(tmp_path)
        sol = BranchAndBoundSolver(cache=cache).solve(p)
        assert sol.status == "optimal"
        assert cache.stats.misses == 1

    def test_none_solution_fields_round_trip(self, tmp_path):
        cache = SolveCache(tmp_path)
        cache.put("k", MilpSolution("infeasible", None, None))
        hit = SolveCache(tmp_path).get("k")
        assert hit.status == "infeasible"
        assert hit.x is None and hit.objective is None and hit.gap is None

    def test_payloads_are_json(self, tmp_path):
        cache = SolveCache(tmp_path)
        BranchAndBoundSolver(cache=cache).solve(knapsack([5], [3], 3))
        files = list(tmp_path.glob("*.milp.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert set(payload) == {"status", "x", "objective", "nodes_explored", "gap"}


class TestSolveCacheTelemetry:
    def test_disk_hits_counted_separately(self, tmp_path):
        p = knapsack([5, 4], [3, 3], 3)
        BranchAndBoundSolver(cache=SolveCache(tmp_path)).solve(p)
        warm = SolveCache(tmp_path)
        solver = BranchAndBoundSolver(cache=warm)
        solver.solve(p)  # disk hit
        solver.solve(p)  # memory hit
        assert warm.stats.hits == 2
        assert warm.stats.disk_hits == 1
        assert warm.stats.to_dict()["disk_hits"] == 1

    def test_bind_metrics_mirrors_counts(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        p = knapsack([5, 4], [3, 3], 3)
        BranchAndBoundSolver(cache=SolveCache(tmp_path)).solve(p)
        registry = MetricsRegistry()
        warm = SolveCache(tmp_path)
        warm.bind_metrics(registry, cache="milp")
        solver = BranchAndBoundSolver(cache=warm)
        solver.solve(p)
        solver.solve(p)
        values = {}
        for name, _, _, children in registry.families():
            for child in children:
                values[(name, child.labels.get("tier"))] = child.value
        assert values[("rap_cache_hits_total", "disk")] == 1.0
        assert values[("rap_cache_hits_total", "memory")] == 1.0
