"""Property tests: the B&B solver against brute force on random binary programs."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.model import MilpProblem


def random_binary_program(data, n_vars: int, n_cons: int):
    """A random feasible-or-not binary program with <= and >= constraints."""
    p = MilpProblem(maximize=True)
    xs = [p.add_binary(f"x{i}") for i in range(n_vars)]
    obj = {}
    for x in xs:
        obj[x] = data.draw(st.integers(min_value=-10, max_value=10))
    p.set_objective(obj)
    constraints = []
    for c in range(n_cons):
        coeffs = {
            x: data.draw(st.integers(min_value=-5, max_value=5)) for x in xs
        }
        rhs = data.draw(st.integers(min_value=-8, max_value=12))
        sense = data.draw(st.sampled_from(["<=", ">="]))
        p.add_constraint(coeffs, sense, rhs)
        constraints.append((coeffs, sense, rhs))
    return p, xs, obj, constraints


def brute_force(xs, obj, constraints):
    best = None
    for assign in itertools.product([0, 1], repeat=len(xs)):
        feasible = True
        for coeffs, sense, rhs in constraints:
            lhs = sum(coeffs[x] * v for x, v in zip(xs, assign))
            if sense == "<=" and lhs > rhs:
                feasible = False
                break
            if sense == ">=" and lhs < rhs:
                feasible = False
                break
        if not feasible:
            continue
        value = sum(obj[x] * v for x, v in zip(xs, assign))
        if best is None or value > best:
            best = value
    return best


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bb_matches_brute_force_on_random_programs(data):
    """Property: optimal objective equals exhaustive search (or both infeasible)."""
    n_vars = data.draw(st.integers(min_value=1, max_value=7))
    n_cons = data.draw(st.integers(min_value=0, max_value=4))
    problem, xs, obj, constraints = random_binary_program(data, n_vars, n_cons)
    solution = BranchAndBoundSolver().solve(problem)
    expected = brute_force(xs, obj, constraints)
    if expected is None:
        assert solution.status == "infeasible"
    else:
        assert solution.ok, solution.status
        assert solution.objective == pytest.approx(expected)
        # The returned point itself must be feasible and achieve the value.
        assert problem.is_feasible(solution.x)
        assert problem.objective_value(solution.x) == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_warm_start_never_hurts(data):
    """Property: supplying any feasible warm start never degrades optimality."""
    n_vars = data.draw(st.integers(min_value=1, max_value=6))
    problem, xs, obj, constraints = random_binary_program(data, n_vars, 2)
    cold = BranchAndBoundSolver().solve(problem)
    # Find some feasible point by brute force to use as a warm start.
    warm_point = None
    for assign in itertools.product([0, 1], repeat=n_vars):
        vec = np.array(assign, dtype=float)
        if problem.is_feasible(vec):
            warm_point = vec
            break
    if warm_point is None:
        assert cold.status == "infeasible"
        return
    warm = BranchAndBoundSolver().solve(problem, warm_start=warm_point)
    assert warm.ok
    assert warm.objective == pytest.approx(cold.objective)
