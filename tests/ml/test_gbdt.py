"""Unit tests for the gradient-boosting regressor."""

import numpy as np
import pytest

from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import r2_score


def smooth_data(n=1500, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, 4))
    y = 3 * x[:, 0] + np.sin(5 * x[:, 1]) + x[:, 2] * x[:, 3]
    return x, y


class TestGradientBoostingRegressor:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))

    def test_rejects_tiny_data(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((1, 2)), np.zeros(1))

    def test_fits_smooth_function(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(n_estimators=80, max_depth=4).fit(x[:1200], y[:1200])
        assert r2_score(y[1200:], model.predict(x[1200:])) > 0.95

    def test_training_loss_decreases(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(n_estimators=50).fit(x, y)
        assert model.train_scores_[-1] < model.train_scores_[0]

    def test_single_estimator_beats_mean(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(n_estimators=1, learning_rate=1.0).fit(x, y)
        mse_model = float(np.mean((model.predict(x) - y) ** 2))
        mse_mean = float(np.mean((y - y.mean()) ** 2))
        assert mse_model < mse_mean

    def test_early_stopping_limits_trees(self):
        x, y = smooth_data(800)
        model = GradientBoostingRegressor(
            n_estimators=300, early_stopping_rounds=5, random_state=1
        ).fit(x, y)
        assert model.n_trees_ < 300
        assert len(model.validation_scores_) == model.n_trees_

    def test_subsampling_still_learns(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(n_estimators=60, subsample=0.5, random_state=2).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.9

    def test_deterministic_given_seed(self):
        x, y = smooth_data(500)
        a = GradientBoostingRegressor(n_estimators=20, subsample=0.7, random_state=3).fit(x, y)
        b = GradientBoostingRegressor(n_estimators=20, subsample=0.7, random_state=3).fit(x, y)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_predict_rejects_wrong_width(self):
        x, y = smooth_data(300)
        model = GradientBoostingRegressor(n_estimators=5).fit(x, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((4, 7)))

    def test_feature_importances_sum_to_one(self):
        x, y = smooth_data(600)
        model = GradientBoostingRegressor(n_estimators=20).fit(x, y)
        imp = model.feature_importances()
        assert imp.shape == (4,)
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_feature_ranked_high(self):
        rng = np.random.default_rng(4)
        x = rng.random((800, 3))
        y = 10 * x[:, 1]  # only feature 1 matters
        model = GradientBoostingRegressor(n_estimators=20).fit(x, y)
        imp = model.feature_importances()
        assert imp[1] == imp.max()


class TestEdgeCases:
    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((0, 3)), np.zeros(0))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.ones((1, 3)), np.ones(1))

    def test_constant_target_predicts_constant(self):
        rng = np.random.default_rng(5)
        x = rng.random((50, 3))
        model = GradientBoostingRegressor(n_estimators=5).fit(x, np.full(50, 7.0))
        np.testing.assert_allclose(model.predict(rng.random((8, 3))), 7.0)

    def test_two_samples_fit(self):
        # The smallest legal training set: must fit and predict in-range.
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([1.0, 2.0])
        model = GradientBoostingRegressor(n_estimators=10, learning_rate=1.0).fit(x, y)
        pred = model.predict(x)
        assert np.all(np.isfinite(pred))
        assert np.all((pred >= 1.0 - 1e-9) & (pred <= 2.0 + 1e-9))

    def test_monotone_under_residual_correction(self):
        """A constant multiplicative correction -- the residual model's
        output -- must preserve the ordering of GBDT predictions, so a
        calibrated predictor never reverses the planner's kernel ranking."""
        from repro.telemetry import CalibrationSample, ResidualModel

        x, y = smooth_data(600)
        model = GradientBoostingRegressor(n_estimators=40).fit(x, y)
        preds = sorted(float(p) for p in model.predict(x[:50]) if p > 0)
        residual = ResidualModel()
        for i in range(16):
            residual.record(CalibrationSample("Clamp", 100.0, 230.0, iteration=i))
        corrected = [residual.correct("Clamp", p) for p in preds]
        assert corrected == sorted(corrected)
        for raw, cal in zip(preds, corrected):
            assert cal == pytest.approx(raw * 2.3)
