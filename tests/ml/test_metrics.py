"""Unit tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import mae, mape, mse, r2_score, within_tolerance_accuracy

arrays = st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50)


class TestBasicMetrics:
    def test_mse(self):
        assert mse([1, 2], [1, 4]) == pytest.approx(2.0)

    def test_mae(self):
        assert mae([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_mape(self):
        assert mape([2, 4], [1, 2]) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_r2_mean_predictor(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([5, 5], [5, 5]) == 1.0
        assert r2_score([5, 5], [4, 6]) == 0.0


class TestWithinToleranceAccuracy:
    def test_all_exact(self):
        assert within_tolerance_accuracy([1, 2], [1, 2]) == 1.0

    def test_partial(self):
        # 10% tolerance: 1.05 passes, 1.5 fails.
        assert within_tolerance_accuracy([1.0, 1.0], [1.05, 1.5]) == 0.5

    def test_boundary_inclusive(self):
        assert within_tolerance_accuracy([1.0], [1.1], tolerance=0.10) == 1.0

    @given(arrays)
    def test_self_prediction_is_perfect(self, ys):
        y = np.array(ys)
        assert within_tolerance_accuracy(y, y) == 1.0

    @given(arrays)
    def test_bounded_in_unit_interval(self, ys):
        y = np.array(ys)
        acc = within_tolerance_accuracy(y, y + 1.0)
        assert 0.0 <= acc <= 1.0
