"""Unit tests for the histogram regression tree."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree


def step_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, 2))
    y = np.where(x[:, 0] > 0.5, 10.0, -10.0)
    return x, y


class TestRegressionTree:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree(n_bins=1)

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_depth_zero_predicts_mean(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=0).fit(x, y)
        pred = tree.predict(x)
        np.testing.assert_allclose(pred, y.mean())
        assert tree.num_nodes == 1

    def test_learns_step_function(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 1.0

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).random((50, 3))
        tree = RegressionTree(max_depth=5).fit(x, np.full(50, 7.0))
        assert tree.num_nodes == 1
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(1)
        x = rng.random((500, 4))
        y = rng.random(500)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_enforced(self):
        x, y = step_data(20)
        tree = RegressionTree(max_depth=10, min_samples_leaf=10).fit(x, y)
        # With 20 samples and a 10-sample floor, at most one split happens.
        assert tree.num_nodes <= 3

    def test_predict_wrong_ndim(self):
        x, y = step_data()
        tree = RegressionTree().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros(3))

    def test_feature_split_counts(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=3).fit(x, y)
        counts = tree.feature_split_counts(2)
        assert counts[0] >= 1  # the informative feature is used
        assert counts.sum() >= 1

    def test_prediction_in_target_range(self):
        rng = np.random.default_rng(2)
        x = rng.random((300, 3))
        y = rng.uniform(-5, 5, 300)
        tree = RegressionTree(max_depth=6).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9
