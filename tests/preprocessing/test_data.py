"""Unit tests for the synthetic Criteo data substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.preprocessing.data import (
    Batch,
    CriteoSchema,
    DenseColumn,
    KAGGLE_SCHEMA,
    SparseColumn,
    SyntheticCriteoDataset,
    TERABYTE_SCHEMA,
    concat_csr_blocks,
    offsets_from_lengths,
    rowwise_concat_csr,
)


class TestDenseColumn:
    def test_basic(self):
        col = DenseColumn("d", np.array([1.0, 2.0], dtype=np.float32))
        assert len(col) == 2

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            DenseColumn("d", np.zeros((2, 2)))

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            DenseColumn("d", np.array(["a", "b"]))

    def test_copy_is_independent(self):
        col = DenseColumn("d", np.array([1.0, 2.0]))
        copy = col.copy()
        copy.values[0] = 99.0
        assert col.values[0] == 1.0

    def test_preserves_dtype(self):
        col = DenseColumn("d", np.array([1, 2], dtype=np.int32))
        assert col.values.dtype == np.int32


class TestSparseColumn:
    def test_basic(self):
        col = SparseColumn("s", [0, 2, 3], [5, 6, 7], hash_size=10)
        assert col.num_rows == 2
        assert col.nnz == 3
        assert col.avg_list_length == 1.5
        np.testing.assert_array_equal(col.row(0), [5, 6])
        np.testing.assert_array_equal(col.row(1), [7])

    def test_lengths(self):
        col = SparseColumn("s", [0, 2, 3], [5, 6, 7], hash_size=10)
        np.testing.assert_array_equal(col.lengths(), [2, 1])

    def test_rejects_bad_offsets_start(self):
        with pytest.raises(ValueError):
            SparseColumn("s", [1, 2], [5], hash_size=10)

    def test_rejects_offsets_mismatch(self):
        with pytest.raises(ValueError):
            SparseColumn("s", [0, 5], [1, 2], hash_size=10)

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(ValueError):
            SparseColumn("s", [0, 3, 2, 4], [1, 2, 3, 4], hash_size=10)

    def test_rejects_nonpositive_hash_size(self):
        with pytest.raises(ValueError):
            SparseColumn("s", [0, 1], [1], hash_size=0)

    def test_empty_rows_allowed(self):
        col = SparseColumn("s", [0, 0, 1], [3], hash_size=10)
        assert col.row(0).size == 0


class TestBatch:
    def test_size_consistency_enforced(self):
        with pytest.raises(ValueError):
            Batch(
                dense={"d": DenseColumn("d", np.zeros(4))},
                sparse={"s": SparseColumn("s", [0, 1], [1], hash_size=5)},
            )

    def test_column_lookup(self):
        b = Batch(dense={"d": DenseColumn("d", np.zeros(3))})
        assert b.column("d").name == "d"
        with pytest.raises(KeyError):
            b.column("missing")

    def test_put_routes_by_type(self):
        b = Batch(dense={"d": DenseColumn("d", np.zeros(3))})
        b.put(SparseColumn("s", [0, 1, 2, 3], [1, 2, 3], hash_size=5))
        assert "s" in b.sparse

    def test_empty_batch_size_zero(self):
        assert Batch().size == 0

    def test_nbytes_positive(self, small_batch):
        assert small_batch.nbytes() > 0

    def test_copy_deep(self, small_batch):
        c = small_batch.copy()
        name = next(iter(c.dense))
        c.dense[name].values[:] = -1
        assert not np.array_equal(c.dense[name].values, small_batch.dense[name].values)


class TestCriteoSchema:
    def test_table2_shapes(self):
        assert KAGGLE_SCHEMA.num_dense == 13
        assert KAGGLE_SCHEMA.num_sparse == 26
        assert KAGGLE_SCHEMA.total_hash_size == 33_700_000
        assert TERABYTE_SCHEMA.total_hash_size == 177_900_000

    def test_hash_sizes_sum_close_to_total(self):
        sizes = TERABYTE_SCHEMA.hash_sizes()
        assert len(sizes) == 26
        assert sum(sizes) == pytest.approx(TERABYTE_SCHEMA.total_hash_size, rel=0.05)

    def test_hash_sizes_have_floor(self):
        sizes = KAGGLE_SCHEMA.hash_sizes()
        assert all(s >= 1000 for s in sizes)

    def test_scaled(self):
        wide = TERABYTE_SCHEMA.scaled(2, 4)
        assert wide.num_dense == 26
        assert wide.num_sparse == 104

    def test_names(self):
        assert KAGGLE_SCHEMA.dense_names()[0] == "dense_0"
        assert KAGGLE_SCHEMA.sparse_names()[-1] == "sparse_25"


class TestSyntheticCriteoDataset:
    def test_batch_shape(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=1)
        b = ds.batch(128)
        assert b.size == 128
        assert len(b.dense) == 13
        assert len(b.sparse) == 26

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            SyntheticCriteoDataset(KAGGLE_SCHEMA).batch(0)

    def test_deterministic_by_seed_and_index(self):
        a = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=5).batch(64, index=3)
        b = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=5).batch(64, index=3)
        np.testing.assert_array_equal(a.dense["dense_0"].values, b.dense["dense_0"].values)
        np.testing.assert_array_equal(a.sparse["sparse_0"].values, b.sparse["sparse_0"].values)

    def test_different_indices_differ(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=5)
        a, b = ds.batch(64, 0), ds.batch(64, 1)
        assert not np.array_equal(a.dense["dense_0"].values, b.dense["dense_0"].values)

    def test_nan_rate_respected(self):
        schema = CriteoSchema(name="t", nan_rate=0.5)
        b = SyntheticCriteoDataset(schema, seed=2).batch(4096)
        frac = float(np.isnan(b.dense["dense_0"].values).mean())
        assert 0.4 < frac < 0.6

    def test_zero_nan_rate(self):
        schema = CriteoSchema(name="t", nan_rate=0.0)
        b = SyntheticCriteoDataset(schema, seed=2).batch(512)
        for col in b.dense.values():
            assert not np.isnan(col.values).any()

    def test_ids_within_hash_space(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=3)
        b = ds.batch(512)
        for col in b.sparse.values():
            assert col.values.min() >= 0
            assert col.values.max() < col.hash_size

    def test_min_one_id_per_row(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=4)
        b = ds.batch(256)
        for col in b.sparse.values():
            assert col.lengths().min() >= 1

    def test_batches_generator(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=1)
        out = list(ds.batches(32, count=3))
        assert len(out) == 3
        assert all(b.size == 32 for b in out)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=512))
    def test_any_batch_size_valid(self, n):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=1)
        b = ds.batch(n)
        assert b.size == n
        for col in b.sparse.values():
            assert col.offsets[-1] == col.nnz


class TestCsrHelperDtypesAndOutBuffers:
    """Satellites: dtype preservation across CSR helpers + out validation."""

    def _cols(self, dtype):
        a_off = np.array([0, 2, 3], dtype=np.int64)
        a_val = np.array([1, 2, 3], dtype=dtype)
        b_off = np.array([0, 1, 3], dtype=np.int64)
        b_val = np.array([7, 8, 9], dtype=dtype)
        return [a_off, b_off], [a_val, b_val]

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint16, np.float32])
    def test_both_helpers_preserve_values_dtype(self, dtype):
        offsets_list, values_list = self._cols(dtype)
        _, block_vals = concat_csr_blocks(offsets_list, values_list)
        _, row_vals = rowwise_concat_csr(offsets_list, values_list)
        # The fix: rowwise_concat_csr hardcoded int64; both helpers must
        # agree on the promoted input dtype.
        assert block_vals.dtype == np.dtype(dtype)
        assert row_vals.dtype == np.dtype(dtype)

    def test_helpers_promote_mixed_dtypes_identically(self):
        offsets_list, values_list = self._cols(np.int32)
        values_list[1] = values_list[1].astype(np.int64)
        _, block_vals = concat_csr_blocks(offsets_list, values_list)
        _, row_vals = rowwise_concat_csr(offsets_list, values_list)
        assert block_vals.dtype == row_vals.dtype == np.int64

    def test_rowwise_values_correct_with_narrow_dtype(self):
        offsets_list, values_list = self._cols(np.int32)
        offsets, values = rowwise_concat_csr(offsets_list, values_list)
        np.testing.assert_array_equal(offsets, [0, 3, 6])
        np.testing.assert_array_equal(values, [1, 2, 7, 3, 8, 9])

    def test_offsets_from_lengths_out_validation(self):
        lengths = np.array([2, 1, 3], dtype=np.int64)
        good = np.empty(4, dtype=np.int64)
        result = offsets_from_lengths(lengths, out=good)
        assert result is good
        np.testing.assert_array_equal(result, [0, 2, 3, 6])
        with pytest.raises(ValueError, match="need len\\(lengths\\) \\+ 1 = 4"):
            offsets_from_lengths(lengths, out=np.empty(3, dtype=np.int64))
        with pytest.raises(ValueError, match="integer dtype"):
            offsets_from_lengths(lengths, out=np.empty(4, dtype=np.float64))

    def test_concat_csr_blocks_out_validation(self):
        offsets_list, values_list = self._cols(np.int64)
        with pytest.raises(ValueError, match="out_offsets has 3 entries, need"):
            concat_csr_blocks(offsets_list, values_list, out_offsets=np.empty(3, dtype=np.int64))
        with pytest.raises(ValueError, match="out_offsets must be an integer dtype"):
            concat_csr_blocks(offsets_list, values_list, out_offsets=np.empty(5, dtype=np.float32))
        with pytest.raises(ValueError, match="out_values has 2 entries, need total_nnz = 6"):
            concat_csr_blocks(offsets_list, values_list, out_values=np.empty(2, dtype=np.int64))

    def test_concat_csr_blocks_rejects_lossy_out_values(self):
        offsets_list, values_list = self._cols(np.int64)
        with pytest.raises(ValueError, match="cannot safely hold"):
            concat_csr_blocks(offsets_list, values_list, out_values=np.empty(6, dtype=np.int16))

    def test_concat_csr_blocks_widening_out_values_allowed(self):
        offsets_list, values_list = self._cols(np.int32)
        out_values = np.empty(6, dtype=np.int64)
        _, got = concat_csr_blocks(offsets_list, values_list, out_values=out_values)
        assert got is out_values
        np.testing.assert_array_equal(got, [1, 2, 3, 7, 8, 9])
