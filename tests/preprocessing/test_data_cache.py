"""Satellite coverage: CSR segment helpers, column/batch caches, noise memo."""

import numpy as np
import pytest

from repro.preprocessing import (
    Batch,
    DenseColumn,
    SparseColumn,
    concat_csr_blocks,
    lengths_from_offsets,
    make_op,
    offsets_from_lengths,
    rowwise_concat_csr,
    segment_positions,
)
from repro.preprocessing.ops import _config_noise


# ----------------------------------------------------------------------
# CSR segment helpers
# ----------------------------------------------------------------------


def test_offsets_lengths_roundtrip():
    lengths = np.array([3, 0, 2, 5, 0], dtype=np.int64)
    offsets = offsets_from_lengths(lengths)
    np.testing.assert_array_equal(offsets, [0, 3, 3, 5, 10, 10])
    np.testing.assert_array_equal(lengths_from_offsets(offsets), lengths)


def test_segment_positions():
    offsets = offsets_from_lengths(np.array([2, 0, 3], dtype=np.int64))
    np.testing.assert_array_equal(segment_positions(offsets), [0, 1, 0, 1, 2])


def test_concat_csr_blocks_stacks_rows():
    offsets, values = concat_csr_blocks(
        [np.array([0, 2, 3], dtype=np.int64), np.array([0, 0, 1], dtype=np.int64)],
        [np.array([10, 11, 12], dtype=np.int64), np.array([20], dtype=np.int64)],
    )
    np.testing.assert_array_equal(offsets, [0, 2, 3, 3, 4])
    np.testing.assert_array_equal(values, [10, 11, 12, 20])


def test_rowwise_concat_interleaves_rows():
    offsets, values = rowwise_concat_csr(
        [np.array([0, 2, 2], dtype=np.int64), np.array([0, 1, 3], dtype=np.int64)],
        [np.array([1, 2], dtype=np.int64), np.array([7, 8, 9], dtype=np.int64)],
    )
    np.testing.assert_array_equal(offsets, [0, 3, 5])
    np.testing.assert_array_equal(values, [1, 2, 7, 8, 9])


# ----------------------------------------------------------------------
# Invalidation-safe column/batch caches
# ----------------------------------------------------------------------


def _col(lengths, name="s"):
    offsets = offsets_from_lengths(np.asarray(lengths, dtype=np.int64))
    values = np.arange(int(offsets[-1]), dtype=np.int64)
    return SparseColumn(name, offsets, values, hash_size=1000)


def test_lengths_cached_and_read_only():
    col = _col([2, 0, 3])
    first = col.lengths()
    assert col.lengths() is first  # cached, not recomputed
    assert not first.flags.writeable
    with pytest.raises(ValueError):
        first[0] = 99
    assert col.avg_list_length == pytest.approx(5 / 3)


def test_offsets_frozen_against_cache_invalidation():
    col = _col([1, 4])
    with pytest.raises(ValueError):
        col.offsets[1] = 0  # mutating would silently desync the cache


def test_trusted_column_lazily_caches_lengths():
    base = _col([2, 1])
    col = SparseColumn.trusted("t", base.offsets, base.values, 1000)
    first = col.lengths()
    np.testing.assert_array_equal(first, [2, 1])
    assert col.lengths() is first


def test_batch_nbytes_cached_and_invalidated_by_put():
    batch = Batch(
        dense={"d": DenseColumn("d", np.zeros(3, dtype=np.float32))},
        sparse={"s": _col([1, 0, 2])},
    )
    before = batch.nbytes()
    assert batch.nbytes() == before  # cached path
    batch.put(DenseColumn("d2", np.zeros(3, dtype=np.float64)))
    assert batch.nbytes() == before + 3 * 8  # put() invalidated the cache


# ----------------------------------------------------------------------
# _config_noise memoization
# ----------------------------------------------------------------------


def test_config_noise_memoized_and_stable():
    _config_noise.cache_clear()
    key = ("SigridHash", 4096, 2.0, 7, 11)
    first = _config_noise(key)
    assert _config_noise(key) == first
    info = _config_noise.cache_info()
    assert info.hits >= 1 and info.misses == 1
    # Memoized result is exactly the uncached computation.
    assert first == _config_noise.__wrapped__(key)
    # The cache is bounded, not unbounded growth.
    assert info.maxsize is not None


def test_config_noise_feeds_kernel_lowering():
    op = make_op("SigridHash", ("s0",), "h", salt=1, max_value=101)
    _config_noise.cache_clear()
    first = op.gpu_kernel(4096, avg_list_length=2.0)
    hits_before = _config_noise.cache_info().hits
    again = op.gpu_kernel(4096, avg_list_length=2.0)
    assert again.duration_us == first.duration_us
    assert _config_noise.cache_info().hits > hits_before
