"""Golden-equivalence suite: compiled engine vs the naive executor.

The contract under test (ISSUE 5): for every column the naive
``execute_graph_set`` produces, the compiled engine produces the same name
with bit-identical contents -- dense columns with exact (dtype-preserving)
equality, sparse columns with exact ``offsets``/``values``/``hash_size`` --
across all Table-1 operators, random graphs, fused and unfused execution,
and empty/ragged/single-row batches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import compile_plan
from repro.core.fusion import build_fusion_instance
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.milp.fusion_problem import solve_fusion
from repro.preprocessing import (
    Batch,
    CompileError,
    DenseColumn,
    FeatureGraph,
    GraphSet,
    DENSE_CONSUMER,
    SparseColumn,
    SyntheticCriteoDataset,
    build_plan,
    compile_graph_set,
    compile_op_groups,
    execute_graph_set,
    make_op,
)
from repro.preprocessing import ParallelEngine, resolve_backend
from repro.preprocessing.executor import MissingColumnsError
from repro.preprocessing.random_plans import RandomPlanConfig, generate_random_plan
from repro.core import RapPlanner

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def assert_batches_bit_identical(golden: Batch, out: Batch, names) -> None:
    for name in names:
        if name in golden.dense:
            assert name in out.dense, f"engine did not produce dense {name!r}"
            a, b = golden.dense[name].values, out.dense[name].values
            assert a.dtype == b.dtype, f"{name}: dtype {b.dtype} != {a.dtype}"
            if np.issubdtype(a.dtype, np.floating):
                np.testing.assert_array_equal(a, b, err_msg=name)
            else:
                assert np.array_equal(a, b), name
        else:
            assert name in golden.sparse, f"golden lost column {name!r}"
            assert name in out.sparse, f"engine did not produce sparse {name!r}"
            a, b = golden.sparse[name], out.sparse[name]
            assert a.hash_size == b.hash_size, name
            assert np.array_equal(a.offsets, b.offsets), name
            assert b.values.dtype == a.values.dtype, name
            assert np.array_equal(a.values, b.values), name


def produced_outputs(graph_set: GraphSet) -> list[str]:
    return [op.output for graph in graph_set for op in graph.ops]


def all_modes(graph_set: GraphSet):
    """The three compile modes: ASAP-fused, unfused, MILP assignment."""
    yield "fused", compile_graph_set(graph_set, fusion=True)
    yield "unfused", compile_graph_set(graph_set, fusion=False)
    instance, _ = build_fusion_instance(list(graph_set))
    assignment = solve_fusion(instance)
    yield "milp", compile_graph_set(graph_set, assignment=assignment)


def random_batch(rng: np.random.Generator, rows: int, max_len: int = 6) -> Batch:
    """A ragged batch with NaNs in the dense column and empty sparse rows."""
    dense = rng.normal(size=rows).astype(np.float32)
    dense[rng.random(rows) < 0.15] = np.nan
    lengths = rng.integers(0, max_len + 1, size=rows)
    offsets = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = rng.integers(0, 2**40, size=int(offsets[-1]), dtype=np.int64)
    lengths2 = rng.integers(0, max_len + 1, size=rows)
    offsets2 = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(lengths2, out=offsets2[1:])
    values2 = rng.integers(0, 2**40, size=int(offsets2[-1]), dtype=np.int64)
    return Batch(
        dense={"d0": DenseColumn("d0", dense)},
        sparse={
            "s0": SparseColumn("s0", offsets, values, hash_size=2**40),
            "s1": SparseColumn("s1", offsets2, values2, hash_size=2**40),
        },
    )


# ----------------------------------------------------------------------
# Per-op coverage: every Table-1 operator, fused/unfused/MILP
# ----------------------------------------------------------------------

TABLE1_OPS = [
    ("FillNull", ("d0",), DENSE_CONSUMER, dict(fill_value=1.5)),
    ("Logit", ("d0",), DENSE_CONSUMER, dict(eps=1e-5)),
    ("BoxCox", ("d0",), DENSE_CONSUMER, dict(lmbda=0.5)),
    ("Cast", ("d0",), DENSE_CONSUMER, dict(dtype="float64")),
    ("Onehot", ("d0",), "t0", dict(num_classes=16)),
    ("Bucketize", ("d0",), "t0", dict(borders=(-0.5, 0.0, 0.5))),
    ("SigridHash", ("s0",), "t0", dict(salt=7, max_value=1009)),
    ("FirstX", ("s0",), "t0", dict(x=2)),
    ("Clamp", ("s0",), "t0", dict(lower=5, upper=500)),
    ("MapId", ("s0",), "t0", dict(multiplier=2_654_435_761, offset=1, table_size=997)),
    ("Ngram", ("s0", "s1"), "t0", dict(n=2, out_hash_size=1009)),
]


@pytest.mark.parametrize("op_name,inputs,consumer,params", TABLE1_OPS)
@given(seed=st.integers(0, 2**32 - 1), rows=st.integers(1, 48))
@settings(max_examples=15, deadline=None)
def test_single_op_bit_identical(op_name, inputs, consumer, params, seed, rows):
    op = make_op(op_name, inputs, f"{op_name}_out", **params)
    graph_set = GraphSet(
        [FeatureGraph(f"g_{op_name}", [op], consumer=consumer)], rows=rows
    )
    batch = random_batch(np.random.default_rng(seed), rows)
    golden = execute_graph_set(graph_set, batch)
    for mode, program in all_modes(graph_set):
        out = program.execute(batch)
        assert_batches_bit_identical(
            golden, out, produced_outputs(graph_set)
        ), f"mode {mode}"


# ----------------------------------------------------------------------
# Whole plans and random graphs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("plan_id", [0, 1, 2, 3])
def test_pinned_plans_bit_identical(plan_id):
    graph_set, schema = build_plan(plan_id, rows=512)
    batch = SyntheticCriteoDataset(schema, seed=11).batch(512, index=plan_id)
    golden = execute_graph_set(graph_set, batch)
    for mode, program in all_modes(graph_set):
        out = program.execute(batch)
        assert_batches_bit_identical(golden, out, produced_outputs(graph_set))
        # The fused modes must actually fuse on these plans, otherwise the
        # suite silently stops covering the grouped execution paths.
        if mode in ("fused", "milp"):
            assert program.max_fusion_degree >= 2


@given(seed=st.integers(0, 10_000), rows=st.integers(1, 96))
@settings(max_examples=20, deadline=None)
def test_random_graphs_bit_identical(seed, rows):
    graph_set, schema = generate_random_plan(RandomPlanConfig(seed=seed), rows=rows)
    batch = SyntheticCriteoDataset(schema, seed=seed).batch(rows, index=0)
    golden = execute_graph_set(graph_set, batch)
    for _, program in all_modes(graph_set):
        out = program.execute(batch)
        assert_batches_bit_identical(golden, out, produced_outputs(graph_set))


def test_all_empty_sparse_rows():
    """nnz == 0 through the whole sparse pipeline, fused and unfused."""
    ops = [
        make_op("SigridHash", ("s0",), "h", salt=3, max_value=101),
        make_op("FirstX", ("h",), "f", x=2),
        make_op("Clamp", ("f",), "c", lower=1, upper=50),
        make_op("Ngram", ("s0", "s1"), "n", n=2, out_hash_size=101),
    ]
    graph_set = GraphSet([FeatureGraph("g", ops, consumer="t0")], rows=5)
    empty = np.zeros(6, dtype=np.int64)
    batch = Batch(
        sparse={
            "s0": SparseColumn("s0", empty, np.empty(0, dtype=np.int64), 100),
            "s1": SparseColumn("s1", empty.copy(), np.empty(0, dtype=np.int64), 100),
        }
    )
    golden = execute_graph_set(graph_set, batch)
    for _, program in all_modes(graph_set):
        out = program.execute(batch)
        assert_batches_bit_identical(golden, out, produced_outputs(graph_set))


def test_single_row_batch():
    graph_set, schema = build_plan(1, rows=1)
    batch = SyntheticCriteoDataset(schema, seed=5).batch(1, index=0)
    golden = execute_graph_set(graph_set, batch)
    for _, program in all_modes(graph_set):
        assert_batches_bit_identical(
            golden, program.execute(batch), produced_outputs(graph_set)
        )


# ----------------------------------------------------------------------
# Backend x worker-count matrix (ISSUE 10): every kernel backend, at any
# engine width, must be bit-identical to the naive executor
# ----------------------------------------------------------------------

MATRIX_BACKENDS = ["numpy", "numba", "numexpr"]
MATRIX_WORKERS = [1, 2, 4]


def _require_backend(name: str) -> None:
    backend = resolve_backend(name)
    if backend.unavailable_reason is not None:
        pytest.skip(f"{name} backend unavailable: {backend.unavailable_reason}")


@pytest.mark.parametrize("workers", MATRIX_WORKERS)
@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
def test_backend_worker_matrix_bit_identical(backend, workers):
    _require_backend(backend)
    graph_set, schema = build_plan(1, rows=256)
    dataset = SyntheticCriteoDataset(schema, seed=13)
    names = produced_outputs(graph_set)
    batch = dataset.batch(256, index=0)
    golden = execute_graph_set(graph_set, batch)
    # Single-core compiled with this backend...
    program = compile_graph_set(graph_set, backend=backend)
    assert_batches_bit_identical(golden, program.execute(batch), names)
    # ...and the sharded multi-process engine at this width, including
    # arena reuse across iterations (the second batch recycles worker
    # segments bump-allocated for the first).
    with ParallelEngine(graph_set, workers=workers, backend=backend) as engine:
        assert_batches_bit_identical(golden, engine.execute(batch), names)
        batch1 = dataset.batch(256, index=1)
        golden1 = execute_graph_set(graph_set, batch1)
        assert_batches_bit_identical(golden1, engine.execute(batch1), names)


@pytest.mark.parametrize("workers", MATRIX_WORKERS)
@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
def test_backend_worker_matrix_empty_sparse_rows(backend, workers):
    _require_backend(backend)
    ops = [
        make_op("SigridHash", ("s0",), "h", salt=3, max_value=101),
        make_op("FirstX", ("h",), "f", x=2),
        make_op("Clamp", ("f",), "c", lower=1, upper=50),
        make_op("Ngram", ("s0", "s1"), "n", n=2, out_hash_size=101),
    ]
    graph_set = GraphSet([FeatureGraph("g", ops, consumer="t0")], rows=5)
    empty = np.zeros(6, dtype=np.int64)
    batch = Batch(
        sparse={
            "s0": SparseColumn("s0", empty, np.empty(0, dtype=np.int64), 100),
            "s1": SparseColumn("s1", empty.copy(), np.empty(0, dtype=np.int64), 100),
        }
    )
    golden = execute_graph_set(graph_set, batch)
    program = compile_graph_set(graph_set, backend=backend)
    assert_batches_bit_identical(golden, program.execute(batch), produced_outputs(graph_set))
    with ParallelEngine(graph_set, workers=workers, backend=backend) as engine:
        out = engine.execute(batch)
        assert_batches_bit_identical(golden, out, produced_outputs(graph_set))


# ----------------------------------------------------------------------
# The codegen path: plan -> per-GPU compiled programs
# ----------------------------------------------------------------------


def test_compile_plan_matches_naive():
    graph_set, schema = build_plan(1, rows=256)
    model = model_for_plan(graph_set, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=256)
    plan = RapPlanner(workload).plan(graph_set)
    programs = compile_plan(plan, rows=256)
    assert set(programs) == {0, 1}
    batch = SyntheticCriteoDataset(schema, seed=3).batch(256, index=0)
    golden = execute_graph_set(graph_set, batch)
    covered = set()
    for program in programs.values():
        out = program.execute(batch)
        names = [op.output for step in program.steps for op in step.members]
        covered.update(names)
        assert_batches_bit_identical(golden, out, names)
    # Between them the per-GPU programs execute every op the plan schedules.
    assert covered


# ----------------------------------------------------------------------
# Arena behavior and execution contract
# ----------------------------------------------------------------------


def test_arena_steady_state_no_new_allocations():
    graph_set, schema = build_plan(1, rows=512)
    program = compile_graph_set(graph_set)
    dataset = SyntheticCriteoDataset(schema, seed=9)
    program.execute(dataset.batch(512, index=0))
    allocated_after_first = program.arena.stats()["allocated_blocks"]
    program.execute(dataset.batch(512, index=1))
    assert program.arena.stats()["allocated_blocks"] == allocated_after_first
    assert program.arena.stats()["reused_blocks"] > 0
    assert program.batches_executed == 2


def test_copy_outputs_survive_next_batch():
    """copy_outputs detaches results from arena buffers reused next batch."""
    graph_set, schema = build_plan(1, rows=128)
    program = compile_graph_set(graph_set)
    dataset = SyntheticCriteoDataset(schema, seed=21)
    batch0 = dataset.batch(128, index=0)
    golden0 = execute_graph_set(graph_set, batch0)
    kept = program.execute(batch0, copy_outputs=True)
    program.execute(dataset.batch(128, index=1))  # recycles arena buffers
    assert_batches_bit_identical(golden0, kept, produced_outputs(graph_set))


def test_execute_validates_like_naive():
    graph_set, schema = build_plan(1, rows=64)
    program = compile_graph_set(graph_set)
    wrong_rows = SyntheticCriteoDataset(schema, seed=1).batch(32, index=0)
    with pytest.raises(ValueError, match="built for 64"):
        program.execute(wrong_rows)
    with pytest.raises(ValueError, match="built for 64"):
        execute_graph_set(graph_set, wrong_rows)
    empty = Batch(dense={"d": DenseColumn("d", np.zeros(64, dtype=np.float32))})
    with pytest.raises(MissingColumnsError):
        program.execute(empty)
    with pytest.raises(MissingColumnsError):
        execute_graph_set(graph_set, empty)


# ----------------------------------------------------------------------
# Compile-time validation
# ----------------------------------------------------------------------


def test_assignment_size_mismatch_raises():
    graph_set, _ = build_plan(1, rows=64)
    instance, _ = build_fusion_instance(list(graph_set)[:1])
    assignment = solve_fusion(instance)
    with pytest.raises(CompileError, match="covers"):
        compile_graph_set(graph_set, assignment=assignment)


def test_op_groups_order_violation_raises():
    first = make_op("SigridHash", ("s0",), "h", salt=1, max_value=11)
    second = make_op("Clamp", ("h",), "c", lower=0, upper=5)
    with pytest.raises(CompileError, match="dependency"):
        compile_op_groups([[second], [first]], rows=4)


def test_op_groups_mixed_types_raise():
    a = make_op("SigridHash", ("s0",), "h", salt=1, max_value=11)
    b = make_op("Clamp", ("s0",), "c", lower=0, upper=5)
    with pytest.raises(CompileError, match="mixes"):
        compile_op_groups([[a, b]], rows=4)


def test_duplicate_output_raises():
    a = make_op("SigridHash", ("s0",), "h", salt=1, max_value=11)
    b = make_op("SigridHash", ("s1",), "h", salt=2, max_value=11)
    with pytest.raises(CompileError, match="more than one op"):
        compile_op_groups([[a], [b]], rows=4)
