"""Tests for functional execution and data-preparation costing."""

import pytest

from repro.preprocessing.data import Batch, SyntheticCriteoDataset
from repro.preprocessing.executor import (
    DataPreparation,
    MissingColumnsError,
    PreprocessingError,
    estimate_data_preparation,
    execute_graph_set,
)
from repro.preprocessing.plans import build_plan


class TestExecuteGraphSet:
    def test_input_batch_untouched(self, plan0):
        gs, schema = plan0
        batch = SyntheticCriteoDataset(schema, seed=1).batch(512)
        before = len(batch.dense) + len(batch.sparse)
        out = execute_graph_set(gs, batch)
        after_input = len(batch.dense) + len(batch.sparse)
        assert after_input == before
        assert len(out.dense) + len(out.sparse) > before

    def test_row_count_mismatch_rejected(self, plan0):
        gs, schema = plan0
        batch = SyntheticCriteoDataset(schema, seed=1).batch(16)
        with pytest.raises(ValueError):
            execute_graph_set(gs, batch)

    def test_all_outputs_present(self, plan0):
        gs, schema = plan0
        batch = SyntheticCriteoDataset(schema, seed=1).batch(512)
        out = execute_graph_set(gs, batch)
        for graph in gs:
            final = graph.output_op.output
            assert final in out.dense or final in out.sparse


class TestDataPreparation:
    def test_total_is_sum(self):
        prep = DataPreparation(alloc_us=10.0, h2d_copy_us=20.0, dispatch_us=5.0)
        assert prep.total_us == 35.0

    def test_estimate_from_graph_set(self, plan0):
        gs, _ = plan0
        prep = estimate_data_preparation(gs)
        assert prep.alloc_us > 0
        assert prep.h2d_copy_us > 0
        assert prep.dispatch_us > 0

    def test_estimate_scales_with_ops(self):
        gs0, _ = build_plan(0, rows=128)
        gs3, _ = build_plan(3, rows=128)
        assert estimate_data_preparation(gs3).total_us > estimate_data_preparation(gs0).total_us

    def test_plain_list_requires_rows(self, plan0):
        gs, _ = plan0
        with pytest.raises(ValueError):
            estimate_data_preparation(list(gs))

    def test_plain_list_with_rows(self, plan0):
        gs, _ = plan0
        prep = estimate_data_preparation(list(gs), rows=512)
        assert prep.total_us == pytest.approx(estimate_data_preparation(gs).total_us)


class TestMissingColumns:
    def _batch_without(self, schema, names):
        batch = SyntheticCriteoDataset(schema, seed=1).batch(512)
        return Batch(
            dense={k: v for k, v in batch.dense.items() if k not in names},
            sparse={k: v for k, v in batch.sparse.items() if k not in names},
        )

    def test_missing_column_raises_single_clear_error(self, plan0):
        gs, schema = plan0
        required = set()
        for graph in gs:
            required.update(graph.raw_inputs())
        victim = sorted(required)[0]
        batch = self._batch_without(schema, {victim})
        with pytest.raises(MissingColumnsError) as err:
            execute_graph_set(gs, batch)
        assert err.value.columns == [victim]
        assert victim in str(err.value)

    def test_all_missing_columns_reported_at_once(self, plan0):
        gs, schema = plan0
        required = set()
        for graph in gs:
            required.update(graph.raw_inputs())
        victims = sorted(required)[:3]
        batch = self._batch_without(schema, set(victims))
        with pytest.raises(MissingColumnsError) as err:
            execute_graph_set(gs, batch)
        assert err.value.columns == victims

    def test_error_is_a_preprocessing_error(self, plan0):
        gs, schema = plan0
        required = sorted({c for g in gs for c in g.raw_inputs()})
        batch = self._batch_without(schema, {required[0]})
        with pytest.raises(PreprocessingError):
            execute_graph_set(gs, batch)

    def test_complete_batch_passes_validation(self, plan0):
        gs, schema = plan0
        batch = SyntheticCriteoDataset(schema, seed=1).batch(512)
        execute_graph_set(gs, batch)  # must not raise
