"""Unit tests for feature graphs and graph sets."""

import pytest

from repro.preprocessing.data import SyntheticCriteoDataset, KAGGLE_SCHEMA
from repro.preprocessing.graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from repro.preprocessing.ops import Clamp, FillNull, FirstX, Logit, Ngram, SigridHash


def chain_graph(name="g", consumer="table:sparse_0"):
    return FeatureGraph(
        name=name,
        ops=[
            SigridHash(inputs=("sparse_0",), output=f"{name}_h"),
            FirstX(inputs=(f"{name}_h",), output=f"{name}_f", x=2),
            Clamp(inputs=(f"{name}_f",), output=f"{name}_out", upper=999),
        ],
        consumer=consumer,
    )


class TestFeatureGraph:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FeatureGraph(name="g", ops=[], consumer=DENSE_CONSUMER)

    def test_edges_from_column_names(self):
        g = chain_graph()
        assert g.edges == ((0, 1), (1, 2))

    def test_rejects_duplicate_outputs(self):
        with pytest.raises(ValueError):
            FeatureGraph(
                name="g",
                ops=[
                    FillNull(inputs=("x",), output="y"),
                    Logit(inputs=("y",), output="y"),
                ],
                consumer=DENSE_CONSUMER,
            )

    def test_rejects_non_topological_order(self):
        with pytest.raises(ValueError):
            FeatureGraph(
                name="g",
                ops=[
                    Logit(inputs=("mid",), output="out"),
                    FillNull(inputs=("x",), output="mid"),
                ],
                consumer=DENSE_CONSUMER,
            )

    def test_raw_inputs(self):
        g = chain_graph()
        assert g.raw_inputs() == {"sparse_0"}

    def test_multi_input_raw(self):
        g = FeatureGraph(
            name="ng",
            ops=[Ngram(inputs=("a", "b"), output="ng_out", n=2)],
            consumer="table:t",
        )
        assert g.raw_inputs() == {"a", "b"}

    def test_op_type_counts(self):
        counts = chain_graph().op_type_counts()
        assert counts == {"SigridHash": 1, "FirstX": 1, "Clamp": 1}

    def test_output_op(self):
        assert chain_graph().output_op.op_name == "Clamp"

    def test_to_networkx(self):
        nxg = chain_graph().to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 2

    def test_kernels_one_per_op(self):
        ks = chain_graph().kernels(256)
        assert len(ks) == 3
        assert [k.tag for k in ks] == ["SigridHash", "FirstX", "Clamp"]

    def test_standalone_latency_is_sum(self):
        g = chain_graph()
        assert g.standalone_latency_us(256) == pytest.approx(
            sum(k.duration_us for k in g.kernels(256))
        )

    def test_execute_on_real_batch(self):
        ds = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=9)
        batch = ds.batch(128)
        g = chain_graph()
        g.execute(batch)
        assert "g_out" in batch.sparse
        assert (batch.sparse["g_out"].lengths() <= 2).all()

    def test_output_nbytes_positive(self):
        assert chain_graph().output_nbytes(128) > 0


class TestGraphSet:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            GraphSet([chain_graph("a"), chain_graph("a")], rows=128)

    def test_rejects_duplicate_outputs_across_graphs(self):
        g1 = chain_graph("a")
        g2 = FeatureGraph(
            name="b",
            ops=[SigridHash(inputs=("sparse_1",), output="a_h")],
            consumer="table:sparse_1",
        )
        with pytest.raises(ValueError):
            GraphSet([g1, g2], rows=128)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            GraphSet([chain_graph()], rows=0)

    def test_len_and_iter(self):
        gs = GraphSet([chain_graph("a"), chain_graph("b")], rows=64)
        assert len(gs) == 2
        assert [g.name for g in gs] == ["a", "b"]

    def test_getitem(self):
        gs = GraphSet([chain_graph("a")], rows=64)
        assert gs["a"].name == "a"
        with pytest.raises(KeyError):
            gs["missing"]

    def test_total_ops_and_density(self):
        gs = GraphSet([chain_graph("a"), chain_graph("b")], rows=64)
        assert gs.total_ops == 6
        assert gs.ops_per_feature == 3.0

    def test_consumers(self):
        gs = GraphSet(
            [chain_graph("a", consumer="table:t1"), chain_graph("b", consumer=DENSE_CONSUMER)],
            rows=64,
        )
        assert gs.consumers() == {"table:t1", DENSE_CONSUMER}
        assert len(gs.graphs_for_consumer("table:t1")) == 1

    def test_subset(self):
        gs = GraphSet([chain_graph("a"), chain_graph("b")], rows=64)
        sub = gs.subset(["b"])
        assert len(sub) == 1
        assert sub.rows == 64

    def test_kernels_flattened(self):
        gs = GraphSet([chain_graph("a"), chain_graph("b")], rows=64)
        assert len(gs.kernels()) == 6

    def test_summary(self):
        gs = GraphSet([chain_graph("a")], rows=64)
        s = gs.summary()
        assert s["num_features"] == 1
        assert s["total_ops"] == 3
