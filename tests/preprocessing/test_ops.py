"""Unit tests for the Table-1 operator library: transforms and cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.resources import A100_SPEC
from repro.preprocessing.data import Batch, DenseColumn, SparseColumn
from repro.preprocessing.ops import (
    OP_REGISTRY,
    BoxCox,
    Bucketize,
    Cast,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    MapId,
    Ngram,
    Onehot,
    SigridHash,
    concat_sparse_rows,
    make_op,
)


def dense_batch(values):
    return Batch(dense={"x": DenseColumn("x", np.asarray(values, dtype=np.float32))})


def sparse_batch(offsets, values, hash_size=1000):
    return Batch(sparse={"s": SparseColumn("s", offsets, values, hash_size)})


class TestRegistry:
    def test_all_eleven_ops_registered(self):
        assert len(OP_REGISTRY) == 11
        expected = {
            "Logit", "BoxCox", "Onehot", "SigridHash", "FirstX", "Clamp",
            "Bucketize", "Ngram", "MapId", "FillNull", "Cast",
        }
        assert set(OP_REGISTRY) == expected

    def test_make_op(self):
        op = make_op("FillNull", ["x"], "y", fill_value=3.0)
        assert isinstance(op, FillNull)
        assert op.fill_value == 3.0

    def test_make_op_unknown(self):
        with pytest.raises(KeyError):
            make_op("Nonexistent", ["x"], "y")

    def test_categories_match_table1(self):
        assert OP_REGISTRY["Logit"].category == "DN"
        assert OP_REGISTRY["SigridHash"].category == "SN"
        assert OP_REGISTRY["Ngram"].category == "FG"
        assert OP_REGISTRY["FillNull"].category == "Other"

    def test_single_input_ops_reject_multiple_inputs(self):
        with pytest.raises(ValueError):
            FillNull(inputs=("a", "b"), output="y")

    def test_ops_require_inputs(self):
        with pytest.raises(ValueError):
            Ngram(inputs=(), output="y")


class TestFillNull:
    def test_replaces_nan(self):
        b = dense_batch([1.0, np.nan, 3.0])
        out = FillNull(inputs=("x",), output="y", fill_value=-1.0).apply(b)
        np.testing.assert_array_equal(out.values, [1.0, -1.0, 3.0])

    def test_output_added_to_batch(self):
        b = dense_batch([1.0])
        FillNull(inputs=("x",), output="y").apply(b)
        assert "y" in b.dense


class TestLogit:
    def test_midpoint_is_zero(self):
        b = dense_batch([0.5])
        out = Logit(inputs=("x",), output="y").apply(b)
        assert out.values[0] == pytest.approx(0.0, abs=1e-6)

    def test_clipping_keeps_finite(self):
        b = dense_batch([0.0, 1.0, -5.0, 7.0])
        out = Logit(inputs=("x",), output="y").apply(b)
        assert np.isfinite(out.values).all()

    def test_monotone(self):
        b = dense_batch([0.1, 0.4, 0.9])
        out = Logit(inputs=("x",), output="y").apply(b)
        assert out.values[0] < out.values[1] < out.values[2]


class TestBoxCox:
    def test_lambda_half(self):
        b = dense_batch([4.0])
        out = BoxCox(inputs=("x",), output="y", lmbda=0.5).apply(b)
        assert out.values[0] == pytest.approx((2.0 - 1.0) / 0.5)

    def test_lambda_zero_is_log(self):
        b = dense_batch([np.e])
        out = BoxCox(inputs=("x",), output="y", lmbda=0.0).apply(b)
        assert out.values[0] == pytest.approx(1.0, rel=1e-5)

    def test_nonpositive_inputs_clamped(self):
        b = dense_batch([-3.0, 0.0])
        out = BoxCox(inputs=("x",), output="y", lmbda=0.5).apply(b)
        assert np.isfinite(out.values).all()


class TestOnehot:
    def test_hot_index(self):
        b = dense_batch([0.0, 0.5, 0.99])
        out = Onehot(inputs=("x",), output="y", num_classes=4).apply(b)
        np.testing.assert_array_equal(out.values, [0, 2, 3])
        assert out.hash_size == 4

    def test_nan_goes_to_class_zero(self):
        b = dense_batch([np.nan])
        out = Onehot(inputs=("x",), output="y", num_classes=8).apply(b)
        assert out.values[0] == 0

    def test_one_id_per_row(self):
        b = dense_batch([0.1, 0.2, 0.3])
        out = Onehot(inputs=("x",), output="y", num_classes=4).apply(b)
        np.testing.assert_array_equal(out.lengths(), [1, 1, 1])


class TestSigridHash:
    def test_output_bounded(self):
        b = sparse_batch([0, 2, 4], [10, 20, 30, 40])
        out = SigridHash(inputs=("s",), output="y", max_value=100).apply(b)
        assert out.values.min() >= 0
        assert out.values.max() < 100

    def test_deterministic(self):
        b1 = sparse_batch([0, 2], [10, 20])
        b2 = sparse_batch([0, 2], [10, 20])
        op = SigridHash(inputs=("s",), output="y", max_value=1000)
        np.testing.assert_array_equal(op.apply(b1).values, op.apply(b2).values)

    def test_salt_changes_hash(self):
        b1 = sparse_batch([0, 2], [10, 20])
        b2 = sparse_batch([0, 2], [10, 20])
        a = SigridHash(inputs=("s",), output="y", max_value=10**9, salt=1).apply(b1)
        c = SigridHash(inputs=("s",), output="y", max_value=10**9, salt=2).apply(b2)
        assert not np.array_equal(a.values, c.values)

    def test_preserves_offsets(self):
        b = sparse_batch([0, 1, 4], [1, 2, 3, 4])
        out = SigridHash(inputs=("s",), output="y").apply(b)
        np.testing.assert_array_equal(out.offsets, [0, 1, 4])


class TestFirstX:
    def test_truncation(self):
        b = sparse_batch([0, 4, 5], [1, 2, 3, 4, 5])
        out = FirstX(inputs=("s",), output="y", x=2).apply(b)
        np.testing.assert_array_equal(out.lengths(), [2, 1])
        np.testing.assert_array_equal(out.values, [1, 2, 5])

    def test_short_rows_untouched(self):
        b = sparse_batch([0, 1, 2], [7, 8])
        out = FirstX(inputs=("s",), output="y", x=5).apply(b)
        np.testing.assert_array_equal(out.values, [7, 8])

    def test_rejects_nonpositive_x(self):
        b = sparse_batch([0, 1], [1])
        with pytest.raises(ValueError):
            FirstX(inputs=("s",), output="y", x=0).apply(b)

    def test_keeps_order_within_row(self):
        b = sparse_batch([0, 5], [9, 8, 7, 6, 5])
        out = FirstX(inputs=("s",), output="y", x=3).apply(b)
        np.testing.assert_array_equal(out.values, [9, 8, 7])


class TestClamp:
    def test_clamps(self):
        b = sparse_batch([0, 3], [5, 50, 500])
        out = Clamp(inputs=("s",), output="y", lower=10, upper=100).apply(b)
        np.testing.assert_array_equal(out.values, [10, 50, 100])

    def test_rejects_inverted_bounds(self):
        b = sparse_batch([0, 1], [5])
        with pytest.raises(ValueError):
            Clamp(inputs=("s",), output="y", lower=10, upper=1).apply(b)


class TestBucketize:
    def test_bucket_indices(self):
        b = dense_batch([0.1, 0.3, 0.6, 0.9])
        out = Bucketize(inputs=("x",), output="y", borders=(0.25, 0.5, 0.75)).apply(b)
        np.testing.assert_array_equal(out.values, [0, 1, 2, 3])
        assert out.hash_size == 4

    def test_rejects_unsorted_borders(self):
        with pytest.raises(ValueError):
            Bucketize(inputs=("x",), output="y", borders=(0.5, 0.25))

    def test_boundary_goes_right(self):
        b = dense_batch([0.25])
        out = Bucketize(inputs=("x",), output="y", borders=(0.25, 0.5)).apply(b)
        assert out.values[0] == 1


class TestNgram:
    def test_gram_counts(self):
        # One feature, rows of lengths 4 and 2, n=3 -> 2 and 0 grams.
        b = sparse_batch([0, 4, 6], [1, 2, 3, 4, 5, 6])
        out = Ngram(inputs=("s",), output="y", n=3, out_hash_size=1000).apply(b)
        np.testing.assert_array_equal(out.lengths(), [2, 0])

    def test_multi_feature_concat(self):
        b = Batch(
            sparse={
                "a": SparseColumn("a", [0, 2], [1, 2], 100),
                "b": SparseColumn("b", [0, 2], [3, 4], 100),
            }
        )
        out = Ngram(inputs=("a", "b"), output="y", n=2, out_hash_size=1000).apply(b)
        # Concatenated row [1,2,3,4] -> 3 bigrams.
        np.testing.assert_array_equal(out.lengths(), [3])

    def test_no_grams_across_rows(self):
        b = sparse_batch([0, 1, 2], [1, 2])
        out = Ngram(inputs=("s",), output="y", n=2, out_hash_size=1000).apply(b)
        assert out.nnz == 0

    def test_unigram_is_per_element_hash(self):
        b = sparse_batch([0, 3], [1, 2, 3])
        out = Ngram(inputs=("s",), output="y", n=1, out_hash_size=10**9).apply(b)
        assert out.nnz == 3

    def test_rejects_n_below_one(self):
        b = sparse_batch([0, 1], [1])
        with pytest.raises(ValueError):
            Ngram(inputs=("s",), output="y", n=0).apply(b)

    def test_grams_bounded_by_hash_size(self):
        b = sparse_batch([0, 6], [11, 12, 13, 14, 15, 16])
        out = Ngram(inputs=("s",), output="y", n=2, out_hash_size=17).apply(b)
        assert out.values.max() < 17


class TestMapId:
    def test_affine_remap(self):
        b = sparse_batch([0, 2], [3, 4])
        op = MapId(inputs=("s",), output="y", multiplier=7, offset=1, table_size=100)
        out = op.apply(b)
        np.testing.assert_array_equal(out.values, [(3 * 7 + 1) % 100, (4 * 7 + 1) % 100])

    def test_bounded(self):
        b = sparse_batch([0, 3], [10**9, 5, 77])
        out = MapId(inputs=("s",), output="y", table_size=50).apply(b)
        assert out.values.max() < 50


class TestCast:
    def test_cast_dtype(self):
        b = dense_batch([1.5, 2.5])
        out = Cast(inputs=("x",), output="y", dtype="int32").apply(b)
        assert out.values.dtype == np.int32

    def test_cast_nan_to_int_safe(self):
        b = dense_batch([np.nan, 1.0])
        out = Cast(inputs=("x",), output="y", dtype="int64").apply(b)
        assert out.values[0] == 0


class TestConcatSparseRows:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_sparse_rows([], "y", 10)

    def test_rejects_mismatched_rows(self):
        a = SparseColumn("a", [0, 1], [1], 10)
        b = SparseColumn("b", [0, 1, 2], [1, 2], 10)
        with pytest.raises(ValueError):
            concat_sparse_rows([a, b], "y", 10)

    def test_rowwise_order(self):
        a = SparseColumn("a", [0, 2, 3], [1, 2, 3], 10)
        b = SparseColumn("b", [0, 1, 3], [4, 5, 6], 10)
        out = concat_sparse_rows([a, b], "y", 10)
        np.testing.assert_array_equal(out.row(0), [1, 2, 4])
        np.testing.assert_array_equal(out.row(1), [3, 5, 6])


class TestCostModel:
    def test_duration_includes_launch(self):
        k = FillNull(inputs=("x",), output="y").gpu_kernel(16)
        assert k.duration_us > A100_SPEC.kernel_launch_us

    def test_duration_monotone_in_rows_when_saturated(self):
        op = Ngram(inputs=tuple(f"f{i}" for i in range(8)), output="y", n=3)
        k1 = op.gpu_kernel(16_384)
        k2 = op.gpu_kernel(65_536)
        assert k2.duration_us > k1.duration_us

    def test_demand_monotone_in_width(self):
        """Fig. 1b: wider Ngram kernels demand more of the GPU."""
        demands = []
        for width in (2, 8, 32):
            op = Ngram(inputs=tuple(f"f{i}" for i in range(width)), output="y", n=3)
            demands.append(op.gpu_kernel(4096).demand.sm)
        assert demands == sorted(demands)
        assert demands[-1] > demands[0]

    def test_feature_generation_costs_more_than_normalization(self):
        """Table 1 family heterogeneity: FG >> DN per feature (Fig. 5c)."""
        ngram = Ngram(inputs=("a", "b", "c"), output="y", n=3).gpu_kernel(262_144)
        logit = Logit(inputs=("x",), output="y").gpu_kernel(262_144)
        assert ngram.duration_us > 4 * logit.duration_us

    def test_noise_is_deterministic(self):
        op = SigridHash(inputs=("s",), output="y")
        assert op.gpu_kernel(4096).duration_us == op.gpu_kernel(4096).duration_us

    def test_noise_within_band(self):
        """Perturbation stays within +/-8% of the analytic value."""
        op = FillNull(inputs=("x",), output="y")
        durations = [op.gpu_kernel(r).duration_us for r in range(1000, 9000, 500)]
        bodies = [d - A100_SPEC.kernel_launch_us for d in durations]
        assert max(bodies) / min(bodies) < 1.20

    def test_cpu_latency_much_slower_than_gpu(self):
        op = SigridHash(inputs=("s",), output="y")
        assert op.cpu_latency_us(4096) > 10 * op.gpu_kernel(4096).duration_us

    def test_cost_features_complete(self):
        op = FirstX(inputs=("s",), output="y", x=4)
        feats = op.cost_features(1024, avg_list_length=3.0)
        assert feats["rows"] == 1024.0
        assert feats["param_0"] == 4.0
        assert feats["warps"] >= 1

    def test_kernel_tag_matches_op(self):
        for name, cls in OP_REGISTRY.items():
            inputs = ("a", "b", "c") if cls.input_kind == "multi_sparse" else ("a",)
            k = cls(inputs=inputs, output="y").gpu_kernel(256)
            assert k.tag == name

    @settings(max_examples=20, deadline=None)
    @given(rows=st.integers(min_value=1, max_value=100_000))
    def test_kernel_always_valid(self, rows):
        op = SigridHash(inputs=("s",), output="y")
        k = op.gpu_kernel(rows)
        assert k.duration_us > 0
        assert 0 <= k.demand.sm <= 1
        assert 0 <= k.demand.dram <= 1
        assert k.num_warps >= 1


@settings(max_examples=20, deadline=None)
@given(
    lengths=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40),
    n=st.integers(min_value=1, max_value=4),
)
def test_ngram_length_invariant(lengths, n):
    """Property: per-row gram count is max(0, len - n + 1)."""
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = np.arange(int(offsets[-1]), dtype=np.int64)
    b = Batch(sparse={"s": SparseColumn("s", offsets, values, 10**6)})
    out = Ngram(inputs=("s",), output="y", n=n, out_hash_size=10**6).apply(b)
    expected = [max(0, L - n + 1) for L in lengths]
    np.testing.assert_array_equal(out.lengths(), expected)
