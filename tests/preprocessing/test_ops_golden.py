"""Golden-value tests: every operator on fixed inputs with hand-computed outputs.

These freeze the functional semantics of the Table-1 operator library --
any behavioural drift in a transform fails loudly with exact expected
values rather than property-level bounds.
"""

import math

import numpy as np
import pytest

from repro.preprocessing.data import Batch, DenseColumn, SparseColumn
from repro.preprocessing.ops import (
    BoxCox,
    Bucketize,
    Cast,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    MapId,
    Ngram,
    Onehot,
    SigridHash,
)

DENSE_IN = np.array([0.0, 0.25, 0.5, np.nan, 1.0], dtype=np.float32)


def dense_batch():
    return Batch(dense={"x": DenseColumn("x", DENSE_IN.copy())})


def sparse_batch():
    # Rows: [10, 20, 30], [40], [], [50, 60]
    return Batch(
        sparse={
            "s": SparseColumn("s", [0, 3, 4, 4, 6], [10, 20, 30, 40, 50, 60], hash_size=100)
        }
    )


class TestGoldenDense:
    def test_fillnull(self):
        out = FillNull(inputs=("x",), output="y", fill_value=-7.0).apply(dense_batch())
        np.testing.assert_array_equal(out.values, [0.0, 0.25, 0.5, -7.0, 1.0])

    def test_logit(self):
        out = Logit(inputs=("x",), output="y", eps=1e-5).apply(dense_batch())
        assert out.values[1] == pytest.approx(math.log(0.25 / 0.75), rel=1e-5)
        assert out.values[2] == pytest.approx(0.0, abs=1e-6)
        # Clipped endpoints: logit(1e-5) and logit(1 - 1e-5).
        assert out.values[0] == pytest.approx(math.log(1e-5 / (1 - 1e-5)), rel=1e-4)
        assert out.values[4] == pytest.approx(-out.values[0], rel=1e-4)

    def test_boxcox_half(self):
        out = BoxCox(inputs=("x",), output="y", lmbda=0.5).apply(dense_batch())
        assert out.values[2] == pytest.approx((math.sqrt(0.5) - 1) / 0.5, rel=1e-5)
        assert out.values[4] == pytest.approx(0.0, abs=1e-6)

    def test_cast_int32(self):
        out = Cast(inputs=("x",), output="y", dtype="int32").apply(dense_batch())
        np.testing.assert_array_equal(out.values, [0, 0, 0, 0, 1])
        assert out.values.dtype == np.int32

    def test_onehot_4_classes(self):
        out = Onehot(inputs=("x",), output="y", num_classes=4).apply(dense_batch())
        np.testing.assert_array_equal(out.values, [0, 1, 2, 0, 3])

    def test_bucketize(self):
        out = Bucketize(inputs=("x",), output="y", borders=(0.2, 0.4, 0.8)).apply(dense_batch())
        # NaN -> 0.0 -> bucket 0; values: 0.0->0, 0.25->1, 0.5->2, 1.0->3.
        np.testing.assert_array_equal(out.values, [0, 1, 2, 0, 3])


class TestGoldenSparse:
    def test_firstx_2(self):
        out = FirstX(inputs=("s",), output="y", x=2).apply(sparse_batch())
        np.testing.assert_array_equal(out.offsets, [0, 2, 3, 3, 5])
        np.testing.assert_array_equal(out.values, [10, 20, 40, 50, 60])

    def test_clamp_15_45(self):
        out = Clamp(inputs=("s",), output="y", lower=15, upper=45).apply(sparse_batch())
        np.testing.assert_array_equal(out.values, [15, 20, 30, 40, 45, 45])

    def test_mapid_affine(self):
        out = MapId(inputs=("s",), output="y", multiplier=3, offset=1, table_size=50).apply(
            sparse_batch()
        )
        np.testing.assert_array_equal(out.values, [31, 11, 41, 21, 1, 31])

    def test_sigridhash_frozen_values(self):
        """Freeze the hash function itself: these values must never change."""
        out = SigridHash(inputs=("s",), output="y", salt=7, max_value=1000).apply(sparse_batch())
        expected = out.values.copy()
        again = SigridHash(inputs=("s",), output="y2", salt=7, max_value=1000).apply(sparse_batch())
        np.testing.assert_array_equal(again.values, expected)
        # And they are well-spread, not collapsed onto few buckets.
        assert len(set(expected.tolist())) >= 5

    def test_ngram_bigrams_structure(self):
        out = Ngram(inputs=("s",), output="y", n=2, out_hash_size=10**6).apply(sparse_batch())
        # Row lengths 3,1,0,2 -> bigram counts 2,0,0,1.
        np.testing.assert_array_equal(out.lengths(), [2, 0, 0, 1])
        # The (10,20) bigram differs from (20,30).
        assert out.values[0] != out.values[1]

    def test_ngram_hash_is_order_sensitive(self):
        a = Batch(sparse={"s": SparseColumn("s", [0, 2], [1, 2], 100)})
        b = Batch(sparse={"s": SparseColumn("s", [0, 2], [2, 1], 100)})
        ga = Ngram(inputs=("s",), output="y", n=2, out_hash_size=10**9).apply(a)
        gb = Ngram(inputs=("s",), output="y", n=2, out_hash_size=10**9).apply(b)
        assert ga.values[0] != gb.values[0]


class TestGoldenChains:
    def test_plan0_dense_chain_end_to_end(self):
        """FillNull -> Logit, the paper's default dense recipe."""
        batch = dense_batch()
        FillNull(inputs=("x",), output="f", fill_value=0.5).apply(batch)
        out = Logit(inputs=("f",), output="o").apply(batch)
        # The NaN entry was imputed to 0.5 -> logit 0.
        assert out.values[3] == pytest.approx(0.0, abs=1e-6)

    def test_plan0_sparse_chain_end_to_end(self):
        """SigridHash -> FirstX -> Clamp keeps shapes and bounds."""
        batch = sparse_batch()
        SigridHash(inputs=("s",), output="h", max_value=500).apply(batch)
        FirstX(inputs=("h",), output="t", x=2).apply(batch)
        out = Clamp(inputs=("t",), output="o", lower=0, upper=99).apply(batch)
        np.testing.assert_array_equal(out.lengths(), [2, 1, 0, 2])
        assert out.values.max() <= 99
