"""Multi-core engine: sharding, shm lifecycle, telemetry, crash safety.

Bit-identity of the parallel engine against the naive executor across the
backend x worker matrix lives in ``test_engine_equivalence.py``; this file
covers the machinery itself -- deterministic dependency-closed
partitioning, leak-proof segment lifecycle (including SIGKILL mid-flight),
the bounded ``BufferArena`` pool, and the ``rap_engine_*`` metric families.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.fusion import build_fusion_instance
from repro.milp.fusion_problem import solve_fusion
from repro.preprocessing import (
    BufferArena,
    EngineMetrics,
    EngineWorkerError,
    ParallelEngine,
    SyntheticCriteoDataset,
    build_plan,
    execute_graph_set,
    partition_ops,
    plan_slots,
)
from repro.preprocessing.executor import MissingColumnsError
from repro.preprocessing.parallel import leaked_segments

from .test_engine_equivalence import assert_batches_bit_identical, produced_outputs


@pytest.fixture(scope="module")
def plan1():
    graph_set, schema = build_plan(1, rows=256)
    return graph_set, schema


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------


def test_partition_deterministic_and_closed(plan1):
    graph_set, _ = plan1
    ops, _, _ = plan_slots(graph_set)
    produced = {op.output for op in ops}
    for num_shards in (1, 2, 4, 8):
        shards = partition_ops(ops, num_shards, graph_set.rows)
        again = partition_ops(ops, num_shards, graph_set.rows)
        assert shards == again, "partitioning must be a pure function of the plan"
        assert len(shards) <= num_shards
        covered = [i for shard in shards for i in shard]
        assert sorted(covered) == list(range(len(ops)))
        assert len(covered) == len(set(covered))
        for shard in shards:
            assert shard == sorted(shard)
            members = set(shard)
            for i in shard:
                for inp in ops[i].inputs:
                    if inp in produced:
                        # Intra-plan dependencies never cross shards.
                        producer = next(
                            j for j, op in enumerate(ops) if op.output == inp
                        )
                        assert producer in members


def test_partition_single_shard_is_whole_plan(plan1):
    graph_set, _ = plan1
    ops, _, _ = plan_slots(graph_set)
    (shard,) = partition_ops(ops, 1, graph_set.rows)
    assert shard == list(range(len(ops)))


def test_partition_rejects_zero_shards(plan1):
    graph_set, _ = plan1
    ops, _, _ = plan_slots(graph_set)
    with pytest.raises(ValueError, match="num_shards"):
        partition_ops(ops, 0, graph_set.rows)


# ----------------------------------------------------------------------
# Compile modes through the parallel engine
# ----------------------------------------------------------------------


def test_unfused_and_milp_modes_bit_identical(plan1):
    graph_set, schema = plan1
    batch = SyntheticCriteoDataset(schema, seed=23).batch(256, index=0)
    golden = execute_graph_set(graph_set, batch)
    names = produced_outputs(graph_set)
    with ParallelEngine(graph_set, fusion=False, workers=2) as engine:
        assert_batches_bit_identical(golden, engine.execute(batch), names)
    instance, _ = build_fusion_instance(list(graph_set))
    assignment = solve_fusion(instance)
    with ParallelEngine(graph_set, assignment=assignment, workers=3) as engine:
        assert_batches_bit_identical(golden, engine.execute(batch), names)


def test_copy_outputs_survive_next_batch(plan1):
    graph_set, schema = plan1
    dataset = SyntheticCriteoDataset(schema, seed=29)
    batch0 = dataset.batch(256, index=0)
    golden0 = execute_graph_set(graph_set, batch0)
    with ParallelEngine(graph_set, workers=2) as engine:
        kept = engine.execute(batch0, copy_outputs=True)
        engine.execute(dataset.batch(256, index=1))  # recycles shm arenas
        assert_batches_bit_identical(golden0, kept, produced_outputs(graph_set))


def test_execute_validates_like_naive(plan1):
    graph_set, schema = plan1
    with ParallelEngine(graph_set, workers=2) as engine:
        with pytest.raises(ValueError, match="256"):
            engine.execute(SyntheticCriteoDataset(schema, seed=1).batch(64, index=0))
        from repro.preprocessing import Batch, DenseColumn

        empty = Batch(dense={"d": DenseColumn("d", np.zeros(256, dtype=np.float32))})
        with pytest.raises(MissingColumnsError):
            engine.execute(empty)


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------


def test_close_unlinks_every_segment(plan1):
    graph_set, schema = plan1
    batch = SyntheticCriteoDataset(schema, seed=31).batch(256, index=0)
    engine = ParallelEngine(graph_set, workers=4)
    engine.execute(batch)
    prefix = engine.prefix
    assert leaked_segments(prefix), "engine should have live segments mid-run"
    engine.close()
    engine.close()  # idempotent
    assert leaked_segments(prefix) == []
    with pytest.raises(RuntimeError):
        engine.execute(batch)


def test_worker_kill_mid_run_leaves_no_segments(plan1):
    graph_set, schema = plan1
    batch = SyntheticCriteoDataset(schema, seed=37).batch(256, index=0)
    engine = ParallelEngine(graph_set, workers=2)
    engine.execute(batch)
    prefix = engine.prefix
    victim = engine._worker_handles[0].process
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10.0)
    with pytest.raises(EngineWorkerError, match="died"):
        # One execute may win the race against pipe EOF; the next cannot.
        engine.execute(batch)
        engine.execute(batch)
    # The failed execute auto-closed the engine and swept its prefix.
    for _ in range(50):
        if not leaked_segments(prefix):
            break
        time.sleep(0.1)
    assert leaked_segments(prefix) == []
    with pytest.raises(RuntimeError):
        engine.execute(batch)


# ----------------------------------------------------------------------
# Bounded BufferArena pool (satellite)
# ----------------------------------------------------------------------


def test_arena_retention_cap_evicts_surplus():
    arena = BufferArena(retain_per_class=1)
    a = arena.take(1024, np.float32)
    b = arena.take(1024, np.float32)
    assert a.base is not b.base
    arena.reset()
    # Only one block fits the size class's cap; the surplus was released.
    assert arena.evicted_blocks == 1
    assert arena.stats()["free_blocks"] == 1
    arena.take(1024, np.float32)
    assert arena.reused_blocks == 1
    assert arena.hit_rate() == pytest.approx(1 / 3)
    assert arena.pooled_bytes() == 1024 * 4


def test_arena_rejects_nonpositive_cap():
    with pytest.raises(ValueError, match="retain_per_class"):
        BufferArena(retain_per_class=0)


def test_arena_stats_surface_pool_health():
    arena = BufferArena()
    arena.take(10, np.int64)
    arena.reset()
    arena.take(10, np.int64)
    stats = arena.stats()
    assert stats["allocated_blocks"] == 1
    assert stats["reused_blocks"] == 1
    assert stats["evicted_blocks"] == 0
    assert stats["hit_rate"] == 0.5
    assert stats["pooled_bytes"] == 16 * 8  # one 16-wide int64 block


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------


def test_engine_metric_families_recorded(plan1):
    graph_set, schema = plan1
    batch = SyntheticCriteoDataset(schema, seed=41).batch(256, index=0)
    metrics = EngineMetrics()
    with ParallelEngine(graph_set, workers=2, metrics=metrics) as engine:
        engine.execute(batch)
        engine.execute(batch)
        assert metrics.batches_total.value == 2
        assert metrics.exec_seconds_total.value > 0
        assert metrics.shm_bytes_in_flight.value > 0
        assert metrics.shm_segments.value >= 2
        busy = [
            metrics.registry.counter(
                "rap_engine_worker_busy_seconds_total",
                "Per-worker seconds spent inside shard program execution.",
                labels={"worker": str(i)},
            ).value
            for i in range(engine.num_workers)
        ]
        assert all(v > 0 for v in busy)
        fractions = engine.worker_busy_fractions()
        assert set(fractions) == set(range(engine.num_workers))
        assert all(0 <= f <= 1 for f in fractions.values())
    # close() zeroes the in-flight gauges so dashboards don't show ghosts.
    assert metrics.shm_bytes_in_flight.value == 0
    assert metrics.shm_segments.value == 0


def test_summary_reports_shards_and_backend(plan1):
    graph_set, _ = plan1
    with ParallelEngine(graph_set, workers=4, backend="auto") as engine:
        _, schema = plan1
        engine.execute(SyntheticCriteoDataset(schema, seed=43).batch(256, index=0))
        info = engine.summary()
        assert info["workers"] == engine.num_shards
        assert sum(info["shards"]) == engine.num_ops
        assert info["steps"] > 0
        assert sum(info["backend_steps"].values()) == info["steps"]
        assert info["shm_bytes"] > 0
