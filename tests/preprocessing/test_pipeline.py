"""PipelinedFeeder: ordering, shutdown, and exception propagation."""

import threading
import time
import traceback

import numpy as np
import pytest

from repro.preprocessing import (
    KAGGLE_SCHEMA,
    PipelinedFeeder,
    SyntheticBatchSource,
    SyntheticCriteoDataset,
)


def _feeder_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate() if t.name.startswith("rap-feeder")]


def _identity(i: int) -> int:
    return i


def _boom_on_two(i: int) -> int:
    if i == 2:
        raise ValueError(f"producer failed on batch {i}")
    return i


def test_in_order_delivery_despite_uneven_latency():
    def produce(i: int) -> int:
        time.sleep(0.02 if i % 2 == 0 else 0.0)  # even batches finish late
        return i

    with PipelinedFeeder(produce, num_batches=8, depth=3, workers=2) as feeder:
        assert list(feeder) == list(range(8))


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_batches_identical_to_direct_synthesis(mode):
    source = SyntheticBatchSource(KAGGLE_SCHEMA, batch_size=32, seed=7)
    dataset = SyntheticCriteoDataset(KAGGLE_SCHEMA, seed=7)
    with PipelinedFeeder(source, num_batches=3, mode=mode) as feeder:
        for i, batch in enumerate(feeder):
            want = dataset.batch(32, index=i)
            assert set(batch.dense) == set(want.dense)
            assert set(batch.sparse) == set(want.sparse)
            for name, col in want.dense.items():
                np.testing.assert_array_equal(batch.dense[name].values, col.values)
            for name, col in want.sparse.items():
                assert np.array_equal(batch.sparse[name].offsets, col.offsets)
                assert np.array_equal(batch.sparse[name].values, col.values)


def test_clean_shutdown_no_leaked_workers():
    feeder = PipelinedFeeder(_identity, num_batches=5, workers=2)
    assert list(feeder) == list(range(5))
    # Exhausting an iteration releases its lease (no leaked workers) but
    # leaves the feeder itself open for the next epoch.
    assert not feeder.closed
    for t in _feeder_threads():
        t.join(timeout=5.0)
    assert not _feeder_threads()
    feeder.close()
    assert feeder.closed


def test_reiteration_uses_a_fresh_pool():
    # Regression: the old __iter__ closed the feeder in its finally, so a
    # second iteration raised bare "RuntimeError: feeder is closed".
    feeder = PipelinedFeeder(_identity, num_batches=4, workers=2)
    assert list(feeder) == list(range(4))
    assert list(feeder) == list(range(4))
    with feeder:
        assert list(feeder) == list(range(4))
    assert feeder.closed
    assert not _feeder_threads()


def test_consumer_break_shuts_down():
    feeder = PipelinedFeeder(_identity, num_batches=100, depth=2)
    with feeder:
        for value in feeder:
            if value == 3:
                break
    assert feeder.closed
    for t in _feeder_threads():
        t.join(timeout=5.0)
    assert not _feeder_threads()


def test_thread_mode_reraises_original_traceback():
    with PipelinedFeeder(_boom_on_two, num_batches=5) as feeder:
        consumed = []
        with pytest.raises(ValueError, match="batch 2") as excinfo:
            for value in feeder:
                consumed.append(value)
    # Batches before the failure were delivered in order...
    assert consumed == [0, 1]
    # ...and the re-raised exception carries the producer's own frames.
    frames = traceback.extract_tb(excinfo.value.__traceback__)
    assert any(f.name == "_boom_on_two" for f in frames)
    assert feeder.closed


def test_process_mode_propagates_with_remote_cause():
    with PipelinedFeeder(_boom_on_two, num_batches=4, mode="process") as feeder:
        with pytest.raises(ValueError, match="batch 2") as excinfo:
            list(feeder)
    # The worker traceback rides along in the cause chain.
    assert excinfo.value.__cause__ is not None


def test_depth_bounds_in_flight_window():
    lock = threading.Lock()
    live = 0
    peak = 0

    def produce(i: int) -> int:
        nonlocal live, peak
        with lock:
            live += 1
            peak = max(peak, live)
        time.sleep(0.005)
        with lock:
            live -= 1
        return i

    with PipelinedFeeder(produce, num_batches=12, depth=2, workers=4) as feeder:
        list(feeder)
    assert peak <= 2


def test_constructor_validation():
    with pytest.raises(ValueError, match="depth"):
        PipelinedFeeder(_identity, num_batches=1, depth=0)
    with pytest.raises(ValueError, match="mode"):
        PipelinedFeeder(_identity, num_batches=1, mode="fiber")
    with pytest.raises(ValueError, match="num_batches"):
        PipelinedFeeder(_identity, num_batches=-1)
    with pytest.raises(ValueError, match="workers"):
        PipelinedFeeder(_identity, num_batches=1, workers=0)


def test_closed_feeder_refuses_iteration():
    feeder = PipelinedFeeder(_identity, num_batches=2)
    feeder.close()
    with pytest.raises(RuntimeError, match="closed"):
        iter(feeder).__next__()
    feeder.close()  # idempotent


def test_zero_batches_yields_nothing():
    with PipelinedFeeder(_identity, num_batches=0) as feeder:
        assert list(feeder) == []
