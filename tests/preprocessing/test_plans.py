"""Tests that the Table-3 plans are reconstructed exactly."""

import pytest

from repro.preprocessing.data import SyntheticCriteoDataset
from repro.preprocessing.executor import execute_graph_set
from repro.preprocessing.graph import DENSE_CONSUMER
from repro.preprocessing.plans import (
    PLAN_TABLE,
    build_plan,
    build_skewed_plan,
    table_for_sparse_feature,
)


class TestPlanTable:
    def test_four_plans(self):
        assert sorted(PLAN_TABLE) == [0, 1, 2, 3]

    def test_table3_row_values(self):
        assert PLAN_TABLE[0].total_ops == 104
        assert PLAN_TABLE[2].total_ops == 384
        assert PLAN_TABLE[3].total_ops == 1548
        assert PLAN_TABLE[3].num_sparse == 104


class TestBuildPlan:
    @pytest.mark.parametrize("plan_id", [0, 1, 2, 3])
    def test_total_ops_match_table3(self, plan_id):
        gs, _ = build_plan(plan_id, rows=128)
        assert gs.total_ops == PLAN_TABLE[plan_id].total_ops

    @pytest.mark.parametrize("plan_id", [0, 1, 2, 3])
    def test_feature_counts_match_table3(self, plan_id):
        gs, schema = build_plan(plan_id, rows=128)
        spec = PLAN_TABLE[plan_id]
        assert schema.num_dense == spec.num_dense
        assert schema.num_sparse == spec.num_sparse

    @pytest.mark.parametrize("plan_id", [0, 1, 2, 3])
    def test_ops_per_input_feature(self, plan_id):
        """Table 3's op/feature density over the raw input features."""
        gs, schema = build_plan(plan_id, rows=128)
        density = gs.total_ops / (schema.num_dense + schema.num_sparse)
        assert density == pytest.approx(PLAN_TABLE[plan_id].ops_per_feature, rel=0.05)

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError):
            build_plan(7)

    def test_plan0_uses_kaggle(self):
        _, schema = build_plan(0, rows=64)
        assert schema.name.startswith("criteo_kaggle")

    def test_plan1_uses_terabyte(self):
        _, schema = build_plan(1, rows=64)
        assert schema.name.startswith("criteo_terabyte")

    def test_every_sparse_feature_has_a_table_consumer(self):
        gs, schema = build_plan(1, rows=64)
        consumers = gs.consumers()
        for feat in schema.sparse_names():
            assert table_for_sparse_feature(feat) in consumers

    def test_dense_features_feed_dense_consumer(self):
        gs, _ = build_plan(0, rows=64)
        dense_graphs = gs.graphs_for_consumer(DENSE_CONSUMER)
        assert len(dense_graphs) == 13

    def test_plan2_contains_fusion_conflicts(self):
        """Even/odd sparse chains order SigridHash and FirstX oppositely."""
        gs, _ = build_plan(2, rows=64)
        even = gs["g_sparse_0"]
        odd = gs["g_sparse_1"]
        assert even.ops[0].op_name == "SigridHash"
        assert odd.ops[0].op_name == "FirstX"

    def test_plan3_has_ngram_graphs(self):
        gs, _ = build_plan(3, rows=64)
        ngram_graphs = [g for g in gs if g.name.startswith("g_ngram")]
        assert len(ngram_graphs) == 23
        assert all(g.ops[0].op_name == "Ngram" for g in ngram_graphs)

    @pytest.mark.parametrize("plan_id", [0, 1, 2])
    def test_plans_execute_functionally(self, plan_id):
        gs, schema = build_plan(plan_id, rows=64)
        batch = SyntheticCriteoDataset(schema, seed=3).batch(64)
        out = execute_graph_set(gs, batch)
        for graph in gs:
            assert graph.output_op.output in out.dense or graph.output_op.output in out.sparse


class TestSkewedPlan:
    def test_more_ops_than_plan1(self):
        skew, _ = build_skewed_plan(rows=64, num_gpus=4)
        base, _ = build_plan(1, rows=64)
        assert skew.total_ops > base.total_ops

    def test_heavy_graphs_target_gpu0_tables(self):
        skew, _ = build_skewed_plan(rows=64, num_gpus=4)
        heavy = [g for g in skew if g.name.startswith("g_ngram_skew")]
        assert heavy
        # Every heavy graph is consumed by a stride-0 table family.
        for g in heavy:
            feat = g.consumer.removeprefix("table:sparse_")
            assert int(feat) % 4 == 0

    def test_custom_stride(self):
        skew, _ = build_skewed_plan(rows=64, num_gpus=2, heavy_every=13)
        heavy = [g for g in skew if g.name.startswith("g_ngram_skew")]
        assert len(heavy) == 2
