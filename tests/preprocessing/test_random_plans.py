"""Tests for the random workload generator (structure + executability)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.preprocessing import (
    DENSE_CONSUMER,
    RandomPlanConfig,
    SyntheticCriteoDataset,
    execute_graph_set,
    generate_random_plan,
)
from repro.preprocessing.data import SparseColumn


class TestRandomPlanConfig:
    def test_rejects_bad_chains(self):
        with pytest.raises(ValueError):
            RandomPlanConfig(min_chain=3, max_chain=2)
        with pytest.raises(ValueError):
            RandomPlanConfig(min_chain=0)

    def test_rejects_no_sparse(self):
        with pytest.raises(ValueError):
            RandomPlanConfig(num_sparse=0)


class TestGenerateRandomPlan:
    def test_deterministic_by_seed(self):
        a, _ = generate_random_plan(RandomPlanConfig(seed=3), rows=64)
        b, _ = generate_random_plan(RandomPlanConfig(seed=3), rows=64)
        assert [g.name for g in a] == [g.name for g in b]
        assert a.total_ops == b.total_ops

    def test_seeds_differ(self):
        a, _ = generate_random_plan(RandomPlanConfig(seed=1), rows=64)
        b, _ = generate_random_plan(RandomPlanConfig(seed=2), rows=64)
        ops_a = [op.op_name for g in a for op in g.ops]
        ops_b = [op.op_name for g in b for op in g.ops]
        assert ops_a != ops_b

    def test_graph_counts(self):
        cfg = RandomPlanConfig(num_dense=5, num_sparse=7, num_ngram_graphs=2)
        gs, schema = generate_random_plan(cfg, rows=64)
        assert len(gs) == 5 + 7 + 2
        assert schema.num_dense == 5 and schema.num_sparse == 7

    def test_chain_lengths_in_bounds(self):
        cfg = RandomPlanConfig(min_chain=2, max_chain=4, num_ngram_graphs=0, seed=9)
        gs, _ = generate_random_plan(cfg, rows=64)
        for g in gs:
            assert 2 <= g.num_ops <= 4

    def test_sparse_consumers_end_sparse(self):
        gs, _ = generate_random_plan(RandomPlanConfig(seed=4), rows=64)
        for g in gs:
            if g.consumer != DENSE_CONSUMER:
                assert g.output_op.output_kind == "sparse"

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_any_seed_is_structurally_valid_and_executable(self, seed):
        """Property: every sampled plan builds and executes end to end."""
        cfg = RandomPlanConfig(num_dense=3, num_sparse=4, num_ngram_graphs=1, seed=seed)
        gs, schema = generate_random_plan(cfg, rows=32)
        batch = SyntheticCriteoDataset(schema, seed=seed).batch(32)
        out = execute_graph_set(gs, batch)
        for g in gs:
            col = out.column(g.output_op.output)
            if g.consumer != DENSE_CONSUMER:
                assert isinstance(col, SparseColumn)
            values = np.asarray(col.values)
            assert np.isfinite(values.astype(np.float64)).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_any_seed_lowers_to_valid_kernels(self, seed):
        cfg = RandomPlanConfig(num_dense=2, num_sparse=3, seed=seed)
        gs, _ = generate_random_plan(cfg, rows=256)
        for k in gs.kernels():
            assert k.duration_us > 0
            assert 0.0 <= k.demand.sm <= 1.0
            assert 0.0 <= k.demand.dram <= 1.0
