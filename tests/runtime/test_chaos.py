"""Seeded chaos run exercising every fault kind at once.

The CI ``chaos`` job runs this file across a matrix of ``CHAOS_SEED``
values and uploads the artifacts written to ``CHAOS_ARTIFACT_DIR`` when a
seed fails, so a red run ships its own journal and report for triage.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    CPU_POOL_CRASH,
    FUSED_OOM,
    GPU_LOST,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    CheckpointManager,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    ResilienceReport,
    RunJournal,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
ITERATIONS = 24

SPECS = (
    FaultSpec(kind=KERNEL_FAILURE, rate=0.35),
    FaultSpec(kind=LATENCY_OVERRUN, rate=0.2, magnitude=1.8),
    FaultSpec(kind=FUSED_OOM, rate=0.1),
    FaultSpec(kind=CPU_POOL_CRASH, rate=0.1),
    FaultSpec(kind=PLAN_DRIFT, rate=0.15, magnitude=1.3),
    FaultSpec(kind=GPU_LOST, rate=0.08),
)


def artifact_dir(tmp_path: Path) -> Path:
    configured = os.environ.get("CHAOS_ARTIFACT_DIR")
    target = Path(configured) if configured else tmp_path / "chaos-artifacts"
    target = target / f"seed-{CHAOS_SEED}"
    target.mkdir(parents=True, exist_ok=True)
    return target


def test_chaos_run_invariants(tmp_path):
    graphs, schema = build_plan(1, rows=512)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=3, local_batch=512)
    artifacts = artifact_dir(tmp_path)
    checkpoints = CheckpointManager(artifacts / "ckpt")
    report = ResilienceReport()
    with RunJournal(artifacts / "journal.jsonl") as journal:
        runtime = FaultTolerantRuntime(
            RapPlanner(workload),
            graphs,
            injector=FaultInjector(specs=SPECS, seed=CHAOS_SEED),
            journal=journal,
        )
        runtime.run(ITERATIONS, report=report, checkpoints=checkpoints, checkpoint_every=6)
    (artifacts / "report.json").write_text(json.dumps(report.to_dict(), indent=2))

    # The run completed every iteration regardless of what the seed threw.
    assert report.num_iterations == ITERATIONS
    assert [r.iteration for r in report.iterations] == list(range(ITERATIONS))

    # Accounting invariants hold under arbitrary fault interleavings.
    for record in report.iterations:
        assert record.iteration_us > 0
        assert record.exposed_us >= 0
        assert record.recovery_us >= 0
        assert record.iteration_us >= record.exposed_us or record.cpu_fallback_us > 0
    assert sum(report.faults_by_epoch().values()) == report.num_faults

    # Membership only ever shrinks, and each shrink was priced.
    survivors = [m.survivors for m in report.membership_changes]
    assert survivors == sorted(survivors, reverse=True)
    for change in report.membership_changes:
        assert change.reshard_us > 0
        assert change.moved_bytes > 0

    # The report round-trips and the latest checkpoint is loadable.
    assert ResilienceReport.from_dict(report.to_dict()).to_dict() == report.to_dict()
    snapshot = checkpoints.latest()
    assert snapshot is not None
    assert snapshot.state["format_version"] == 1

    # The journal narrates the run from the beginning.
    records = RunJournal.read(artifacts / "journal.jsonl")
    assert records and records[0]["type"] == "run"
    journal_memberships = [r for r in records if r["type"] == "membership"]
    assert len(journal_memberships) == len(report.membership_changes)


def test_chaos_run_is_deterministic(tmp_path):
    graphs, schema = build_plan(1, rows=512)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=3, local_batch=512)

    def one_run():
        runtime = FaultTolerantRuntime(
            RapPlanner(workload),
            graphs,
            injector=FaultInjector(specs=SPECS, seed=CHAOS_SEED),
        )
        return runtime.run(ITERATIONS)

    first, second = one_run(), one_run()
    if first.to_dict() != second.to_dict():
        artifacts = artifact_dir(tmp_path)
        (artifacts / "divergence-a.json").write_text(json.dumps(first.to_dict(), indent=2))
        (artifacts / "divergence-b.json").write_text(json.dumps(second.to_dict(), indent=2))
        pytest.fail(f"seed {CHAOS_SEED} diverged across identical runs")
