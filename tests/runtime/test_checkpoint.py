"""Tests for iteration-consistent checkpoints, the run journal, and
bit-identical resume after a simulated kill."""

import json

import pytest

from repro.core import RapPlanner
from repro.core.serialization import plan_to_json
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    GPU_LOST,
    KERNEL_FAILURE,
    PLAN_DRIFT,
    CheckpointError,
    CheckpointManager,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    LatencyWatchdog,
    ResilienceReport,
    RunJournal,
    SimulatedKill,
    validate_records,
)

NUM_GPUS = 3
BATCH = 512

SPECS = (
    FaultSpec(kind=GPU_LOST, rate=0.12),
    FaultSpec(kind=KERNEL_FAILURE, rate=0.4),
    FaultSpec(kind=PLAN_DRIFT, rate=0.2, magnitude=1.2),
)
SEED = 11


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=BATCH)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=NUM_GPUS, local_batch=BATCH)
    return graphs, model, workload


def make_runtime(graphs, workload, journal=None):
    planner = RapPlanner(workload)
    return FaultTolerantRuntime(
        planner,
        graphs,
        injector=FaultInjector(specs=SPECS, seed=SEED),
        journal=journal,
    )


SAMPLE_STATE = {"plan_epoch": 2, "scale": 1.0, "cpu_only": False}
SAMPLE_REPORT = {"iterations": [], "transitions": []}


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = manager.save(8, SAMPLE_STATE, '{"plan": true}', SAMPLE_REPORT)
        snapshot = manager.load(ckpt)
        assert snapshot.iteration == 8
        assert snapshot.state["plan_epoch"] == 2
        assert snapshot.state["next_iteration"] == 8
        assert snapshot.plan_text == '{"plan": true}'
        assert snapshot.report == SAMPLE_REPORT
        assert set(snapshot.manifest["files"]) == {"state.json", "plan.json", "report.json"}

    def test_manifest_digests_every_member(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        manifest = json.loads((ckpt / "MANIFEST.json").read_text())
        for name, meta in manifest["files"].items():
            text = (ckpt / name).read_text()
            assert meta["bytes"] == len(text.encode("utf-8"))
            assert len(meta["sha256"]) == 64

    def test_tampered_member_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        (ckpt / "state.json").write_text('{"evil": 1}')
        with pytest.raises(CheckpointError, match="digest mismatch"):
            manager.load(ckpt)

    def test_missing_member_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        (ckpt / "report.json").unlink()
        with pytest.raises(CheckpointError, match="missing member"):
            manager.load(ckpt)

    def test_unsealed_directory_is_not_a_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = tmp_path / "ckpt-00000004"
        ckpt.mkdir()
        (ckpt / "state.json").write_text("{}")  # crash before manifest
        with pytest.raises(CheckpointError, match="no manifest"):
            manager.load(ckpt)
        assert manager.latest() is None

    def test_latest_falls_back_past_corruption(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        newest = manager.save(8, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        (newest / "MANIFEST.json").write_text("garb")
        snapshot = manager.latest()
        assert snapshot is not None and snapshot.iteration == 4

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in (2, 4, 6, 8):
            manager.save(step, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        remaining = sorted(d.name for d in tmp_path.glob("ckpt-*"))
        assert remaining == ["ckpt-00000006", "ckpt-00000008"]

    def test_prune_never_touches_journal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text('{"type": "run"}\n')
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(2, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        assert journal.exists()

    def test_bad_format_version_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        ckpt = manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        manifest = json.loads((ckpt / "MANIFEST.json").read_text())
        manifest["format_version"] = 99
        (ckpt / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            manager.load(ckpt)

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestJournalScanAndValidate:
    def test_scan_reports_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"type": "run"}\n{"type": "replan", "plan_ep')
        records, flaws = RunJournal.scan(path)
        assert len(records) == 1
        assert len(flaws) == 1
        assert flaws[0].kind == "torn_tail" and flaws[0].line == 2

    def test_scan_flags_mid_file_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"type": "run"}\nnot json at all\n{"type": "checkpoint"}\n')
        records, flaws = RunJournal.scan(path)
        assert [r["type"] for r in records] == ["run", "checkpoint"]
        assert len(flaws) == 1
        assert flaws[0].kind == "corrupt" and flaws[0].line == 2

    def test_scan_flags_non_object_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('[1, 2]\n{"type": "run"}\n')
        records, flaws = RunJournal.scan(path)
        assert len(records) == 1 and flaws[0].kind == "corrupt"

    def test_validate_clean_promotion_pair(self):
        records = [
            {"type": "run"},
            {"type": "promotion", "iteration": 4, "plan_epoch": 1},
            {"type": "promotion_result", "iteration": 6, "plan_epoch": 2,
             "outcome": "rolled_back"},
        ]
        errors, warnings = validate_records(records)
        assert errors == [] and warnings == []

    def test_validate_open_probation_is_warning(self):
        records = [{"type": "run"}, {"type": "promotion", "plan_epoch": 1}]
        errors, warnings = validate_records(records)
        assert errors == []
        assert any("open probation" in w for w in warnings)

    def test_validate_rejects_nested_promotion(self):
        records = [
            {"type": "run"},
            {"type": "promotion", "plan_epoch": 1},
            {"type": "promotion", "plan_epoch": 2},
        ]
        errors, _ = validate_records(records)
        assert any("still in probation" in e for e in errors)

    def test_validate_rejects_orphan_result(self):
        records = [
            {"type": "run"},
            {"type": "promotion_result", "outcome": "committed"},
            {"type": "promotion_result", "outcome": "committed"},
        ]
        errors, _ = validate_records(records)
        # A run boundary makes the first result legal (replayed tail);
        # the second has provably no open promotion.
        assert len(errors) == 1 and "without a matching" in errors[0]

    def test_validate_rejects_unknown_outcome(self):
        records = [
            {"type": "run"},
            {"type": "promotion", "plan_epoch": 1},
            {"type": "promotion_result", "outcome": "exploded"},
        ]
        errors, _ = validate_records(records)
        assert any("unknown probation outcome" in e for e in errors)

    def test_validate_epoch_regression_needs_resume(self):
        regressed = [
            {"type": "run"},
            {"type": "replan", "plan_epoch": 2},
            {"type": "replan", "plan_epoch": 1},
        ]
        errors, _ = validate_records(regressed)
        assert any("regressed" in e for e in errors)
        replayed = [
            {"type": "run"},
            {"type": "replan", "plan_epoch": 2},
            {"type": "resume"},
            {"type": "replan", "plan_epoch": 1},
        ]
        errors, _ = validate_records(replayed)
        assert errors == []


class TestPinnedAnchors:
    """Rollback anchors (DESIGN.md §15) must survive pruning and never be
    mistaken for resume points."""

    def test_pinned_checkpoint_survives_prune(self, tmp_path):
        """Regression: an in-probation anchor outlives any number of cadence
        checkpoints, however old it gets."""
        manager = CheckpointManager(tmp_path, keep=2)
        anchor = manager.save(2, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag="anchor")
        manager.pin(anchor)
        for step in (4, 6, 8, 10, 12):
            manager.save(step, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        assert anchor.exists()
        remaining = sorted(d.name for d in tmp_path.glob("ckpt-*"))
        assert remaining == ["ckpt-00000002-anchor", "ckpt-00000010", "ckpt-00000012"]

    def test_unpin_makes_checkpoint_prunable(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        anchor = manager.save(2, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag="anchor")
        manager.pin(anchor)
        manager.save(4, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        assert anchor.exists()
        manager.unpin(anchor)
        manager.save(6, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        assert not anchor.exists()

    def test_pins_do_not_persist_across_managers(self, tmp_path):
        """Pins are in-memory by design: a crashed process cannot leak a pin
        that protects garbage forever. The shadow loop re-pins on restore."""
        first = CheckpointManager(tmp_path, keep=1)
        anchor = first.save(2, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag="anchor")
        first.pin(anchor)
        second = CheckpointManager(tmp_path, keep=1)
        assert second.pinned == frozenset()

    def test_latest_skips_tagged_anchors(self, tmp_path):
        """An anchor records pre-promotion state to roll back to; resuming
        from it would fork the timeline, so latest() must ignore it even
        when it is the newest complete directory."""
        manager = CheckpointManager(tmp_path)
        manager.save(2, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        manager.save(9, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag="anchor")
        snapshot = manager.latest()
        assert snapshot is not None and snapshot.iteration == 2

    def test_only_anchors_means_no_resume_point(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(3, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag="anchor")
        assert manager.latest() is None

    def test_anchor_does_not_collide_with_cadence_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        cadence = manager.save(5, SAMPLE_STATE, "{}", SAMPLE_REPORT)
        anchor = manager.save(5, {"plan_epoch": 9}, "{}", SAMPLE_REPORT, tag="anchor")
        assert cadence != anchor
        assert manager.load(cadence).state["plan_epoch"] == SAMPLE_STATE["plan_epoch"]
        assert manager.load(anchor).state["plan_epoch"] == 9

    def test_bad_tag_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for tag in ("an chor", "a/b", "", "a\nb"):
            with pytest.raises(ValueError):
                manager.save(5, SAMPLE_STATE, "{}", SAMPLE_REPORT, tag=tag)


class TestRunJournal:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.append("run", iterations=8)
            journal.append("replan", iteration=3, plan_epoch=1)
        records = RunJournal.read(path)
        assert [r["type"] for r in records] == ["run", "replan"]
        assert records[1]["iteration"] == 3

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.append("run", iterations=8)
        with path.open("a") as handle:
            handle.write('{"type": "replan", "iter')  # crash mid-append
        records = RunJournal.read(path)
        assert [r["type"] for r in records] == ["run"]
        # A resumed run appends past the torn line; both survive reading.
        with RunJournal(path) as journal:
            journal.append("resume", iteration=4)
        assert [r["type"] for r in RunJournal.read(path)] == ["run", "resume"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunJournal.read(tmp_path / "nope.jsonl") == []


class TestWatchdogState:
    def test_round_trip(self):
        watchdog = LatencyWatchdog()
        watchdog.observe(1000.0, 2)
        watchdog.observe(1200.0, 0)
        state = watchdog.state_dict()
        restored = LatencyWatchdog()
        restored.load_state(state)
        assert restored.state_dict() == state


class TestKillAndResume:
    def test_kill_raises_before_checkpointing_the_boundary(self, setting, tmp_path):
        graphs, _, workload = setting
        runtime = make_runtime(graphs, workload)
        checkpoints = CheckpointManager(tmp_path)
        report = ResilienceReport()
        with pytest.raises(SimulatedKill) as excinfo:
            runtime.run(16, report=report, checkpoints=checkpoints,
                        checkpoint_every=4, kill_after=10)
        assert excinfo.value.iteration == 9
        # Iterations 0..9 ran; the last sealed checkpoint is at 8, not 10.
        assert len(report.iterations) == 10
        latest = checkpoints.latest()
        assert latest is not None and latest.iteration == 8

    def test_resume_is_bit_identical(self, setting, tmp_path):
        graphs, _, workload = setting

        # Uninterrupted reference run.
        straight = make_runtime(graphs, workload)
        straight_report = straight.run(16)

        # Killed run + resume from the surviving checkpoint.
        killed = make_runtime(graphs, workload)
        checkpoints = CheckpointManager(tmp_path)
        partial = ResilienceReport()
        with pytest.raises(SimulatedKill):
            killed.run(16, report=partial, checkpoints=checkpoints,
                       checkpoint_every=4, kill_after=10)
        snapshot = checkpoints.latest()
        assert snapshot is not None
        resumed, report, start = FaultTolerantRuntime.restore(
            snapshot,
            graphs,
            workload,
            lambda wl: RapPlanner(wl),
            injector=FaultInjector(specs=SPECS, seed=SEED),
        )
        assert start == 8
        resumed.run(16 - start, start_iteration=start, report=report)

        assert report.to_dict() == straight_report.to_dict()
        assert plan_to_json(resumed.plan) == plan_to_json(straight.plan)
        # The reference run crossed a membership change, so the resumed
        # trajectory replayed an elastic shrink bit-identically too.
        assert straight_report.membership_changes

    def test_resume_restores_control_state(self, setting, tmp_path):
        graphs, _, workload = setting
        runtime = make_runtime(graphs, workload)
        report = ResilienceReport()
        with pytest.raises(SimulatedKill):
            runtime.run(16, report=report,
                        checkpoints=CheckpointManager(tmp_path),
                        checkpoint_every=4, kill_after=10)
        snapshot = CheckpointManager(tmp_path).latest()
        resumed, _, _ = FaultTolerantRuntime.restore(
            snapshot, graphs, workload, lambda wl: RapPlanner(wl),
            injector=FaultInjector(specs=SPECS, seed=SEED),
        )
        assert resumed.plan_epoch == snapshot.state["plan_epoch"]
        assert resumed.cpu_only == snapshot.state["cpu_only"]
        assert [m.to_dict() for m in resumed.membership_changes] == snapshot.state["membership"]
        assert resumed.workload.num_gpus == snapshot.state["workload"]["num_gpus"]

    def test_journal_narrates_kill_and_resume(self, setting, tmp_path):
        graphs, _, workload = setting
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            runtime = make_runtime(graphs, workload, journal=journal)
            report = ResilienceReport()
            with pytest.raises(SimulatedKill):
                runtime.run(16, report=report,
                            checkpoints=CheckpointManager(tmp_path),
                            checkpoint_every=4, kill_after=10)
        snapshot = CheckpointManager(tmp_path).latest()
        with RunJournal(path) as journal:
            resumed, report, start = FaultTolerantRuntime.restore(
                snapshot, graphs, workload, lambda wl: RapPlanner(wl),
                injector=FaultInjector(specs=SPECS, seed=SEED),
                journal=journal,
            )
            resumed.run(16 - start, start_iteration=start, report=report)
        types = [r["type"] for r in RunJournal.read(path)]
        assert types[0] == "run"
        assert "kill" in types and "resume" in types and "checkpoint" in types
        assert types.index("kill") < types.index("resume")
        # Everything after the kill came from the resumed process.
        assert types[types.index("resume") + 1] == "run"
