"""Tests for elastic GPU membership: re-sharding, fleet shrink, warm
replans, the N -> 1 -> CPU descent, and epoch-scoped fault accounting."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan, place_tables, reshard_placement
from repro.gpusim.cluster import MultiGpuCluster
from repro.gpusim.resources import A100_SPEC
from repro.preprocessing import build_plan
from repro.preprocessing.graph import DENSE_CONSUMER
from repro.runtime import (
    GPU_LOST,
    KERNEL_FAILURE,
    RESHARD_BASE_US,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    LatencyWatchdog,
    MembershipChange,
    reshard_cost_us,
    surviving_mapping,
)

NUM_GPUS = 4
BATCH = 512


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=BATCH)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=NUM_GPUS, local_batch=BATCH)
    planner = RapPlanner(workload)
    plan = planner.plan(graphs)
    return graphs, model, workload, planner, plan


def quiet_watchdog():
    return LatencyWatchdog(error_threshold=1e9, fault_rate_threshold=1e9)


class ScriptedInjector:
    def __init__(self, schedule):
        self.schedule = dict(schedule)

    def faults_for_iteration(self, iteration, plan):
        return list(self.schedule.get(iteration, []))


def gpu_lost(iteration, gpu):
    return FaultEvent(kind=GPU_LOST, iteration=iteration, gpu=gpu, recover_after=-1)


# ----------------------------------------------------------------------
# Re-sharding the embedding placement
# ----------------------------------------------------------------------


class TestReshardPlacement:
    def test_every_table_remains_placed(self, setting):
        _, model, workload, _, _ = setting
        resharded, _, _ = reshard_placement(workload.placement, model, lost_gpu=1)
        assert resharded.num_gpus == NUM_GPUS - 1
        for table in model.tables:
            assert resharded.is_placed(table.name)

    def test_survivors_keep_their_tables(self, setting):
        _, model, workload, _, _ = setting
        placement = workload.placement
        lost = 1
        resharded, moved, _ = reshard_placement(placement, model, lost_gpu=lost)
        remap = {g: i for i, g in enumerate(g for g in range(NUM_GPUS) if g != lost)}
        for name, gpu in placement.table_to_gpu.items():
            if gpu != lost:
                assert resharded.table_to_gpu[name] == remap[gpu]
                assert name not in moved

    def test_moved_bytes_price_only_the_moved_state(self, setting):
        _, model, workload, _, _ = setting
        placement = workload.placement
        lost = 0
        resharded, moved, moved_bytes = reshard_placement(placement, model, lost_gpu=lost)
        by_name = {t.name: t for t in model.tables}
        expected = 0.0
        for name in moved:
            if name in placement.row_wise_tables:
                expected += by_name[name].nbytes / NUM_GPUS  # only the dead shard
            else:
                expected += by_name[name].nbytes
        assert moved_bytes == pytest.approx(expected)
        assert moved_bytes > 0

    def test_two_gpu_reshard_lands_everything_on_survivor(self):
        graphs, schema = build_plan(0, rows=256)
        model = model_for_plan(graphs, schema)
        placement = place_tables(model, 2)
        resharded, _, _ = reshard_placement(placement, model, lost_gpu=0)
        assert resharded.num_gpus == 1
        assert not resharded.row_wise_tables  # row-wise collapses to table-wise
        assert set(resharded.table_to_gpu.values()) <= {0}

    def test_rejects_invalid_requests(self, setting):
        _, model, workload, _, _ = setting
        with pytest.raises(ValueError):
            reshard_placement(workload.placement, model, lost_gpu=NUM_GPUS)
        single = place_tables(model, 1)
        with pytest.raises(ValueError):
            reshard_placement(single, model, lost_gpu=0)


class TestClusterShrink:
    def test_shrink_drops_one_gpu(self):
        cluster = MultiGpuCluster(4, A100_SPEC)
        small = cluster.shrink(1)
        assert small.num_gpus == 3
        assert small.spec is cluster.spec

    def test_shrink_below_one_rejected(self):
        with pytest.raises(ValueError):
            MultiGpuCluster(1, A100_SPEC).shrink(0)


class TestWorkloadShrunk:
    def test_global_batch_contracts(self, setting):
        _, _, workload, _, _ = setting
        survivor, moved, moved_bytes = workload.shrunk(2)
        assert survivor.num_gpus == NUM_GPUS - 1
        assert survivor.local_batch == BATCH
        assert survivor.global_batch == BATCH * (NUM_GPUS - 1)
        assert moved_bytes > 0 and moved

    def test_survivor_simulates(self, setting):
        _, _, workload, _, _ = setting
        survivor, _, _ = workload.shrunk(0)
        assert survivor.ideal_iteration_us() > 0


# ----------------------------------------------------------------------
# Warm mapping and pricing
# ----------------------------------------------------------------------


class TestSurvivingMapping:
    def test_all_graphs_mapped_at_correct_rows(self, setting):
        graphs, _, workload, _, plan = setting
        lost = 1
        survivor, _, _ = workload.shrunk(lost)
        mapping = surviving_mapping(plan, lost, survivor, graphs)
        assert mapping.num_gpus == survivor.num_gpus
        for graph in graphs:
            placed = mapping.placements[graph.name]
            assert placed, f"graph {graph.name} lost its placement"
            for gpu, rows in placed:
                assert 0 <= gpu < survivor.num_gpus
                if graph.consumer == DENSE_CONSUMER:
                    assert rows == survivor.local_batch
                else:
                    assert rows == survivor.global_batch

    def test_dense_graphs_cover_every_survivor(self, setting):
        graphs, _, workload, _, plan = setting
        survivor, _, _ = workload.shrunk(0)
        mapping = surviving_mapping(plan, 0, survivor, graphs)
        for graph in graphs:
            if graph.consumer == DENSE_CONSUMER:
                assert sorted(g for g, _ in mapping.placements[graph.name]) == list(
                    range(survivor.num_gpus)
                )

    def test_mismatched_workload_rejected(self, setting):
        graphs, _, workload, _, plan = setting
        with pytest.raises(ValueError):
            surviving_mapping(plan, 0, workload, graphs)  # not N-1


class TestReshardCost:
    def test_base_plus_bandwidth_term(self):
        assert reshard_cost_us(0.0, A100_SPEC) == RESHARD_BASE_US
        one_gb = reshard_cost_us(1e9, A100_SPEC)
        assert one_gb == pytest.approx(RESHARD_BASE_US + 1e6 / A100_SPEC.pcie_bw_gbps)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            reshard_cost_us(-1.0, A100_SPEC)


# ----------------------------------------------------------------------
# The runtime descent N -> ... -> 1 -> CPU
# ----------------------------------------------------------------------


def plan_is_valid(plan, workload):
    """Every structural invariant an executable plan must satisfy."""
    assert plan.workload.num_gpus == workload.num_gpus
    assert len(plan.assignments_per_gpu) == workload.num_gpus
    assert len(plan.trailing_per_gpu) == workload.num_gpus
    assert plan.mapping.num_gpus == workload.num_gpus
    # Every graph in the set is mapped somewhere inside the fleet.
    for graph in plan.graph_set:
        placed = plan.mapping.placements.get(graph.name)
        assert placed, f"graph {graph.name} unmapped"
        for gpu, rows in placed:
            assert 0 <= gpu < workload.num_gpus
            assert rows > 0
    # Assignments only reference real stages of real GPUs.
    for gpu, per_stage in enumerate(plan.assignments_per_gpu):
        num_stages = len(workload.stages_for_gpu(gpu))
        for stage_idx in per_stage:
            assert 0 <= stage_idx < num_stages


class TestElasticDescent:
    def test_scripted_descent_to_cpu(self, setting):
        graphs, _, workload, planner, plan = setting
        schedule = {2: [gpu_lost(2, 1)], 4: [gpu_lost(4, 0)], 6: [gpu_lost(6, 1)], 8: [gpu_lost(8, 0)]}
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        mean_clean_us = {}
        fleet_sizes = []
        for i in range(12):
            before = runtime.workload.num_gpus if not runtime.cpu_only else 0
            record, faults, _ = runtime.run_iteration(i)
            after = runtime.workload.num_gpus if not runtime.cpu_only else 0
            fleet_sizes.append(after)
            if not runtime.cpu_only and before == after:
                plan_is_valid(runtime.plan, runtime.workload)
                mean_clean_us.setdefault(after, record.iteration_us)
        # The fleet walked 4 -> 3 -> 2 -> 1 -> cpu.
        assert fleet_sizes == [4, 4, 3, 3, 2, 2, 1, 1, 0, 0, 0, 0]
        assert runtime.cpu_only
        # Throughput (global batch / iteration) degrades monotonically as
        # the fleet shrinks: fewer samples per iteration, never faster.
        throughputs = [
            n * BATCH / mean_clean_us[n] for n in sorted(mean_clean_us, reverse=True)
        ]
        assert all(a >= b for a, b in zip(throughputs, throughputs[1:]))

    def test_membership_changes_recorded_and_priced(self, setting):
        graphs, _, workload, planner, plan = setting
        schedule = {1: [gpu_lost(1, 3)]}
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        report = runtime.run(4)
        assert len(report.membership_changes) == 1
        change = report.membership_changes[0]
        assert change.iteration == 1
        assert change.lost_gpu == 3 and change.lost_gpu_original == 3
        assert change.survivors == NUM_GPUS - 1
        assert change.moved_bytes > 0
        assert change.reshard_us == pytest.approx(
            reshard_cost_us(change.moved_bytes, workload.spec)
        )
        # The reshard is charged to exactly the loss iteration.
        lossy = report.iterations[1]
        assert lossy.recovery_us >= change.reshard_us
        assert lossy.replanned
        clean = report.iterations[2]
        assert clean.recovery_us == 0.0

    def test_original_identity_tracked_through_compaction(self, setting):
        graphs, _, _, planner, plan = setting
        # Losing index 0 twice removes original GPUs 0 then 1.
        schedule = {0: [gpu_lost(0, 0)], 1: [gpu_lost(1, 0)]}
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        report = runtime.run(3)
        originals = [m.lost_gpu_original for m in report.membership_changes]
        assert originals == [0, 1]
        assert [m.lost_gpu for m in report.membership_changes] == [0, 0]

    def test_seeded_descent_runs_to_completion(self, setting):
        graphs, _, _, planner, plan = setting
        injector = FaultInjector(specs=(FaultSpec(kind=GPU_LOST, rate=0.3),), seed=3)
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=injector, watchdog=quiet_watchdog()
        )
        report = runtime.run(24)
        assert report.num_iterations == 24
        assert report.faults_by_kind().get(GPU_LOST, 0) == len(report.membership_changes)
        survivors = [m.survivors for m in report.membership_changes]
        assert survivors == sorted(survivors, reverse=True)  # strictly shrinking fleet
        # Deterministic: the same seed replays the same descent.
        planner2 = RapPlanner(plan.workload)
        runtime2 = FaultTolerantRuntime(
            planner2, graphs, injector=FaultInjector(specs=(FaultSpec(kind=GPU_LOST, rate=0.3),), seed=3),
            watchdog=quiet_watchdog(),
        )
        report2 = runtime2.run(24)
        assert report.to_dict() == report2.to_dict()

    def test_cpu_only_iterations_are_slower_than_gpu(self, setting):
        graphs, _, _, planner, plan = setting
        schedule = {1: [gpu_lost(1, 0)], 2: [gpu_lost(2, 0)], 3: [gpu_lost(3, 0)], 4: [gpu_lost(4, 0)]}
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        report = runtime.run(6)
        gpu_clean = report.iterations[0]
        cpu_iter = report.iterations[5]
        assert runtime.cpu_only
        assert cpu_iter.cpu_fallback_us > 0
        assert cpu_iter.iteration_us > gpu_clean.iteration_us


# ----------------------------------------------------------------------
# Epoch-scoped fault accounting (regression)
# ----------------------------------------------------------------------


class TestEpochAccounting:
    def test_epoch_partition_is_exact(self, setting):
        """Replan-window faults count once: per-epoch counts sum to the total.

        Before plan epochs, a fault landing in the same iteration as a
        replan was attributed to both the old and the new plan's window.
        """
        graphs, _, _, planner, plan = setting
        injector = FaultInjector(
            specs=(
                FaultSpec(kind=GPU_LOST, rate=0.2),
                FaultSpec(kind=KERNEL_FAILURE, rate=0.6),
            ),
            seed=9,
        )
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=injector, watchdog=LatencyWatchdog()
        )
        report = runtime.run(20)
        by_epoch = report.faults_by_epoch()
        assert sum(by_epoch.values()) == report.num_faults
        # Rates per epoch are consistent with the partition.
        for epoch in by_epoch:
            iterations = sum(1 for r in report.iterations if r.plan_epoch == epoch)
            assert report.fault_rate_for_epoch(epoch) == pytest.approx(
                by_epoch[epoch] / iterations
            )

    def test_loss_iteration_faults_charged_to_old_epoch(self, setting):
        graphs, _, _, planner, plan = setting
        schedule = {
            3: [
                gpu_lost(3, 1),
                FaultEvent(kind=KERNEL_FAILURE, iteration=3, gpu=0, stage=0,
                           kernel="nonexistent", recover_after=1),
            ]
        }
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        report = runtime.run(6)
        lossy = report.iterations[3]
        assert lossy.replanned
        assert lossy.plan_epoch == 0  # charged to the plan the faults hit
        assert report.iterations[4].plan_epoch == 1
        assert report.faults_by_epoch() == {0: 2}

    def test_epoch_survives_serialization(self, setting):
        graphs, _, _, planner, plan = setting
        schedule = {1: [gpu_lost(1, 0)]}
        runtime = FaultTolerantRuntime(
            planner, graphs, plan=plan, injector=ScriptedInjector(schedule),
            watchdog=quiet_watchdog(),
        )
        report = runtime.run(4)
        from repro.runtime import ResilienceReport

        rebuilt = ResilienceReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.faults_by_epoch() == report.faults_by_epoch()
        assert [m.to_dict() for m in rebuilt.membership_changes] == [
            m.to_dict() for m in report.membership_changes
        ]


def test_membership_change_round_trip():
    change = MembershipChange(
        iteration=7, lost_gpu=2, lost_gpu_original=3, survivors=2,
        moved_tables=("t1", "t2"), moved_bytes=1.5e9, reshard_us=12_345.0, plan_epoch=4,
    )
    assert MembershipChange.from_dict(change.to_dict()) == change
