"""Fault replay compatibility: the append-only kind contract and the
bit-identical replay of correlated schedules through journals/checkpoints."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    CPU_POOL_CRASH,
    GPU_LOST,
    KERNEL_FAILURE,
    PLAN_DRIFT,
    CheckpointManager,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    RunJournal,
    SimulatedKill,
)
from repro.runtime.faults import FAULT_KIND_IDS, FAULT_KINDS

BATCH = 512
ITERATIONS = 10

SCHEDULE = (
    FaultEvent(kind=GPU_LOST, iteration=3, gpu=0, recover_after=-1),
    FaultEvent(kind=GPU_LOST, iteration=3, gpu=0, recover_after=-1),  # post-compaction pair
    FaultEvent(kind=CPU_POOL_CRASH, iteration=5, magnitude=2.0),
    FaultEvent(kind=CPU_POOL_CRASH, iteration=6, magnitude=2.5),
)


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=BATCH)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=3, local_batch=BATCH
    )
    return graphs, workload


class TestAppendOnlyContract:
    def test_kind_ids_are_pinned(self):
        # Positional ids are persisted implicitly by every journal and
        # checkpoint; reordering FAULT_KINDS breaks replay of old artifacts.
        assert FAULT_KIND_IDS == {
            "kernel_failure": 0,
            "latency_overrun": 1,
            "fused_oom": 2,
            "cpu_pool_crash": 3,
            "plan_drift": 4,
            "gpu_lost": 5,
        }
        assert list(FAULT_KINDS) == list(FAULT_KIND_IDS)

    def test_schedule_validates_against_the_contract(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector(schedule=(FaultEvent(kind="meteor_strike", iteration=0),))
        with pytest.raises(ValueError, match="non-negative iteration"):
            FaultInjector(schedule=(FaultEvent(kind=CPU_POOL_CRASH, iteration=-1),))


class TestRngNeutrality:
    def test_schedule_leaves_rate_drawn_stream_untouched(self, setting):
        graphs, workload = setting
        plan = RapPlanner(workload, parallel_search=False).plan(graphs)
        specs = (FaultSpec(kind=KERNEL_FAILURE, rate=0.5), FaultSpec(kind=PLAN_DRIFT, rate=0.3))
        plain = FaultInjector(specs=specs, seed=9)
        scheduled = FaultInjector(specs=specs, seed=9, schedule=SCHEDULE)
        for iteration in range(ITERATIONS):
            base = plain.faults_for_iteration(iteration, plan)
            both = scheduled.faults_for_iteration(iteration, plan)
            extra = [e for e in SCHEDULE if e.iteration == iteration]
            # Scheduled events are prepended; the seeded draws are identical.
            assert both[: len(extra)] == extra
            assert both[len(extra):] == base


class TestReplay:
    def run_once(self, setting, journal=None, checkpoints=None, kill_after=None):
        graphs, workload = setting
        runtime = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False),
            graphs,
            injector=FaultInjector(
                specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.3),),
                seed=9,
                schedule=SCHEDULE,
            ),
            journal=journal,
        )
        try:
            report = runtime.run(
                ITERATIONS,
                checkpoints=checkpoints,
                checkpoint_every=4 if checkpoints else 0,
                kill_after=kill_after,
            )
        except SimulatedKill:
            return runtime, None
        return runtime, report

    def test_correlated_run_is_deterministic(self, setting):
        _, first = self.run_once(setting)
        _, second = self.run_once(setting)
        assert first.to_dict() == second.to_dict()
        # The schedule actually fired: the pair loss shrank the fleet twice.
        assert len(first.membership_changes) >= 2

    def test_journal_carries_the_schedule(self, setting, tmp_path):
        with RunJournal(tmp_path / "journal.jsonl") as journal:
            self.run_once(setting, journal=journal)
        records = RunJournal.read(tmp_path / "journal.jsonl")
        run_record = records[0]
        assert run_record["type"] == "run"
        replayed = tuple(
            FaultEvent.from_dict(e) for e in run_record["fault_schedule"]
        )
        assert replayed == SCHEDULE

    def test_checkpoint_resume_replays_schedule_bit_identically(self, setting, tmp_path):
        graphs, workload = setting
        _, uninterrupted = self.run_once(setting)

        manager = CheckpointManager(tmp_path / "ckpt")
        self.run_once(setting, checkpoints=manager, kill_after=6)
        snapshot = manager.latest()
        assert snapshot is not None

        # The snapshot echoes the full injector identity -- seed, specs,
        # and the correlated schedule -- so the resuming process rebuilds
        # the exact same fault stream without out-of-band state.
        echo = snapshot.state["injector"]
        injector = FaultInjector(
            specs=tuple(FaultSpec(**s) for s in echo["specs"]),
            seed=echo["seed"],
            schedule=tuple(FaultEvent.from_dict(e) for e in echo["schedule"]),
        )
        runtime, report, start = FaultTolerantRuntime.restore(
            snapshot,
            graphs,
            workload,
            make_planner=lambda wl: RapPlanner(wl, parallel_search=False),
            injector=injector,
        )
        resumed = runtime.run(ITERATIONS - start, start_iteration=start, report=report)
        assert resumed.to_dict() == uninterrupted.to_dict()

    def test_schedule_absent_keeps_legacy_state_shape(self, setting):
        graphs, workload = setting
        runtime = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False),
            graphs,
            injector=FaultInjector(specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.2),), seed=1),
        )
        runtime.run(2)
        state = runtime.state_dict()
        assert "schedule" not in state["injector"]
        assert "epoch_retry_used" not in state
