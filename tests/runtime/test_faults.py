"""Tests for deterministic seeded fault injection."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    CPU_POOL_CRASH,
    FAULT_KINDS,
    FUSED_OOM,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)

ALL_SPECS = (
    FaultSpec(KERNEL_FAILURE, rate=0.4, persistence=0.2),
    FaultSpec(LATENCY_OVERRUN, rate=0.3, magnitude=3.0),
    FaultSpec(FUSED_OOM, rate=0.3, persistence=0.2),
    FaultSpec(CPU_POOL_CRASH, rate=0.2),
    FaultSpec(PLAN_DRIFT, rate=0.2, magnitude=1.5),
)


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=1024)
    planner = RapPlanner(workload)
    return planner.plan(graphs)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike", rate=0.1)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            FaultSpec(KERNEL_FAILURE, rate=rate)

    def test_rejects_bad_magnitude(self):
        with pytest.raises(ValueError):
            FaultSpec(LATENCY_OVERRUN, rate=0.1, magnitude=0.0)

    @pytest.mark.parametrize("persistence", [-0.5, 2.0])
    def test_rejects_bad_persistence(self, persistence):
        with pytest.raises(ValueError):
            FaultSpec(KERNEL_FAILURE, rate=0.1, persistence=persistence)


class TestFaultInjector:
    def test_rejects_duplicate_kind(self):
        with pytest.raises(ValueError):
            FaultInjector(
                [FaultSpec(KERNEL_FAILURE, rate=0.1), FaultSpec(KERNEL_FAILURE, rate=0.2)]
            )

    def test_disabled_without_specs(self, setting):
        injector = FaultInjector()
        assert not injector.enabled
        assert injector.faults_for_iteration(0, setting) == []

    def test_zero_rate_is_disabled(self, setting):
        injector = FaultInjector([FaultSpec(KERNEL_FAILURE, rate=0.0)])
        assert not injector.enabled
        assert injector.faults_for_iteration(5, setting) == []

    def test_same_seed_replays_identically(self, setting):
        a = FaultInjector(ALL_SPECS, seed=13)
        b = FaultInjector(ALL_SPECS, seed=13)
        for i in range(30):
            assert a.faults_for_iteration(i, setting) == b.faults_for_iteration(i, setting)

    def test_schedule_is_pure_per_iteration(self, setting):
        """Drawing iteration 7 twice, or out of order, gives the same events."""
        injector = FaultInjector(ALL_SPECS, seed=13)
        first = injector.faults_for_iteration(7, setting)
        injector.faults_for_iteration(3, setting)
        assert injector.faults_for_iteration(7, setting) == first

    def test_different_seeds_differ(self, setting):
        a = FaultInjector(ALL_SPECS, seed=1)
        b = FaultInjector(ALL_SPECS, seed=2)
        schedules_a = [tuple(a.faults_for_iteration(i, setting)) for i in range(40)]
        schedules_b = [tuple(b.faults_for_iteration(i, setting)) for i in range(40)]
        assert schedules_a != schedules_b

    def test_events_target_real_placements(self, setting):
        placed = {
            k.name
            for per_gpu in setting.assignments_per_gpu
            for kernels in per_gpu.values()
            for k in kernels
        } | {k.name for kernels in setting.trailing_per_gpu for k in kernels}
        injector = FaultInjector(ALL_SPECS, seed=5)
        saw_kernel_fault = False
        for i in range(50):
            for event in injector.faults_for_iteration(i, setting):
                assert event.kind in FAULT_KINDS
                if event.kernel:
                    saw_kernel_fault = True
                    assert event.kernel in placed
                    assert 0 <= event.gpu < 2
        assert saw_kernel_fault

    def test_oom_prefers_fused_kernels(self, setting):
        fused = {
            k.name
            for per_gpu in setting.assignments_per_gpu
            for kernels in per_gpu.values()
            for k in kernels
            if int(k.meta.get("members", 1)) > 1
        }
        assert fused, "plan 1 with fusion enabled should contain fused kernels"
        injector = FaultInjector([FaultSpec(FUSED_OOM, rate=1.0)], seed=5)
        for i in range(20):
            for event in injector.faults_for_iteration(i, setting):
                assert event.kernel in fused

    def test_persistence_draws_persistent_events(self, setting):
        injector = FaultInjector([FaultSpec(KERNEL_FAILURE, rate=1.0, persistence=1.0)], seed=5)
        events = injector.faults_for_iteration(0, setting)
        assert events and all(e.recover_after == -1 for e in events)


class TestFaultEvent:
    def test_round_trip(self):
        event = FaultEvent(
            kind=KERNEL_FAILURE,
            iteration=9,
            gpu=1,
            stage=2,
            kernel="k_fill",
            magnitude=2.5,
            recover_after=-1,
        )
        assert FaultEvent.from_dict(event.to_dict()) == event
