"""Heterogeneous fleets through the elastic runtime and checkpoint/resume."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.gpusim import A100_SPEC, H100_SPEC, V100_SPEC
from repro.preprocessing import build_plan
from repro.runtime import (
    GPU_LOST,
    KERNEL_FAILURE,
    CheckpointManager,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    SimulatedKill,
)

BATCH = 512
MIXED = (A100_SPEC, H100_SPEC, V100_SPEC)


@pytest.fixture(scope="module")
def graphs_schema():
    return build_plan(1, rows=BATCH)


def mixed_workload(graphs_schema, specs=MIXED):
    graphs, schema = graphs_schema
    return TrainingWorkload(
        model_for_plan(graphs, schema),
        num_gpus=len(specs),
        local_batch=BATCH,
        spec=specs[0],
        specs=specs,
    )


class TestHeteroWorkload:
    def test_per_gpu_stage_profiles_differ(self, graphs_schema):
        workload = mixed_workload(graphs_schema)
        assert workload.heterogeneous
        assert workload.fleet_profile == ("A100-40GB", "H100-80GB", "V100-32GB")
        durations = [
            sum(s.duration_us for s in workload.stages_for_gpu(gpu))
            for gpu in range(3)
        ]
        # The H100 runs the same stages faster than the V100.
        assert durations[1] < durations[2]

    def test_planner_runs_on_mixed_fleet(self, graphs_schema):
        graphs, _ = graphs_schema
        workload = mixed_workload(graphs_schema)
        report = RapPlanner(workload, parallel_search=False).plan_and_evaluate(graphs)
        assert report.iteration_us > 0


class TestElasticShrink:
    def test_losing_a_gpu_drops_its_profile(self, graphs_schema):
        graphs, _ = graphs_schema
        workload = mixed_workload(graphs_schema)
        runtime = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False),
            graphs,
            injector=FaultInjector(
                seed=3,
                schedule=(FaultEvent(kind=GPU_LOST, iteration=2, gpu=1, recover_after=-1),),
            ),
        )
        report = runtime.run(5)
        assert len(report.membership_changes) == 1
        # GPU 1 was the H100; the survivors keep their own profiles.
        assert runtime.workload.fleet_profile == ("A100-40GB", "V100-32GB")
        assert runtime.workload.heterogeneous

    def test_shrunk_hetero_run_is_deterministic(self, graphs_schema):
        graphs, _ = graphs_schema

        def one_run():
            workload = mixed_workload(graphs_schema)
            return FaultTolerantRuntime(
                RapPlanner(workload, parallel_search=False),
                graphs,
                injector=FaultInjector(
                    specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.3),),
                    seed=8,
                    schedule=(
                        FaultEvent(kind=GPU_LOST, iteration=3, gpu=0, recover_after=-1),
                    ),
                ),
            ).run(8)

        assert one_run().to_dict() == one_run().to_dict()


class TestHeteroResume:
    def run_settings(self, graphs_schema):
        graphs, _ = graphs_schema
        injector = lambda: FaultInjector(  # noqa: E731
            specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.3),), seed=6
        )
        return graphs, injector

    def test_resume_on_mixed_fleet_is_bit_identical(self, graphs_schema, tmp_path):
        graphs, injector = self.run_settings(graphs_schema)
        workload = mixed_workload(graphs_schema)
        uninterrupted = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False), graphs, injector=injector()
        ).run(8)

        manager = CheckpointManager(tmp_path / "ckpt")
        runtime = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False), graphs, injector=injector()
        )
        with pytest.raises(SimulatedKill):
            runtime.run(8, checkpoints=manager, checkpoint_every=3, kill_after=5)
        snapshot = manager.latest()
        assert snapshot.state["workload"]["fleet"] == [
            "A100-40GB",
            "H100-80GB",
            "V100-32GB",
        ]

        restored, report, start = FaultTolerantRuntime.restore(
            snapshot,
            graphs,
            mixed_workload(graphs_schema),
            make_planner=lambda wl: RapPlanner(wl, parallel_search=False),
            injector=injector(),
        )
        resumed = restored.run(8 - start, start_iteration=start, report=report)
        assert resumed.to_dict() == uninterrupted.to_dict()

    def test_resume_rejects_fleet_profile_mismatch(self, graphs_schema, tmp_path):
        graphs, injector = self.run_settings(graphs_schema)
        workload = mixed_workload(graphs_schema)
        manager = CheckpointManager(tmp_path / "ckpt")
        runtime = FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False), graphs, injector=injector()
        )
        with pytest.raises(SimulatedKill):
            runtime.run(8, checkpoints=manager, checkpoint_every=3, kill_after=5)

        # Same GPU count, different device mix: the checkpoint priced every
        # stage and the plan itself against the original profiles.
        impostor = mixed_workload(graphs_schema, specs=(A100_SPEC, A100_SPEC, A100_SPEC))
        with pytest.raises(ValueError, match="fleet"):
            FaultTolerantRuntime.restore(
                manager.latest(),
                graphs,
                impostor,
                make_planner=lambda wl: RapPlanner(wl, parallel_search=False),
                injector=injector(),
            )
