"""Streaming-ingest integration with the fault-tolerant runtime.

The feeder is runtime machinery, not run state: it never enters
``state_dict()``, and a resumed process reattaches a fresh one. These
tests pin the epoch-wraparound path (the old single-use feeder raised
on the second epoch), the verifier running on *real* ingested batches,
and the empty-source guard.
"""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.ingest import PipelinedFeeder, source
from repro.preprocessing import build_plan
from repro.runtime import DataPathVerifier, FaultTolerantRuntime


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=128)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=128)
    return graphs, schema, workload


def _feeder(batches: int, batch: int = 128) -> PipelinedFeeder:
    return PipelinedFeeder(source(f"synthetic://kaggle?batch={batch}&batches={batches}"))


def test_runtime_wraps_source_epochs(setting):
    graphs, _, workload = setting
    feeder = _feeder(3)
    runtime = FaultTolerantRuntime(RapPlanner(workload), graphs, feeder=feeder)
    runtime.run(7)  # 3-batch source: epochs 0-2, 3-5, 6
    feeder.close()
    assert runtime.batches_ingested == 7
    assert runtime.ingest_epochs == 3


def test_verifier_checks_real_ingested_batches(setting):
    graphs, schema, workload = setting
    feeder = _feeder(4)
    verifier = DataPathVerifier(schema, every=2, seed=3)
    runtime = FaultTolerantRuntime(
        RapPlanner(workload), graphs, verifier=verifier, feeder=feeder
    )
    runtime.run(5)
    feeder.close()
    assert [v.iteration for v in verifier.history] == [0, 2, 4]
    assert all(v.ok for v in verifier.history)


def test_verifier_rejects_mismatched_batch_rows(setting):
    graphs, schema, workload = setting
    feeder = _feeder(2, batch=64)  # plan lowered for 128-row batches
    verifier = DataPathVerifier(schema, every=1)
    runtime = FaultTolerantRuntime(
        RapPlanner(workload), graphs, verifier=verifier, feeder=feeder
    )
    with pytest.raises(ValueError, match="64 rows .* 128"):
        runtime.run(2)
    feeder.close()


def test_empty_source_is_a_clear_error(setting):
    graphs, _, workload = setting
    feeder = PipelinedFeeder(lambda i: i, num_batches=0)
    runtime = FaultTolerantRuntime(RapPlanner(workload), graphs, feeder=feeder)
    with pytest.raises(RuntimeError, match="no batches"):
        runtime.run(1)
    feeder.close()


def test_feeder_stays_out_of_state_dict(setting):
    graphs, _, workload = setting
    feeder = _feeder(3)
    runtime = FaultTolerantRuntime(RapPlanner(workload), graphs, feeder=feeder)
    runtime.run(2)
    state = runtime.state_dict()
    feeder.close()
    assert "feeder" not in state
    assert "ingest" not in repr(sorted(state))


def test_restore_reattaches_a_fresh_feeder(setting, tmp_path):
    from repro.runtime import CheckpointManager

    graphs, _, workload = setting
    feeder = _feeder(3)
    runtime = FaultTolerantRuntime(RapPlanner(workload), graphs, feeder=feeder)
    report = runtime.run(2)
    manager = CheckpointManager(str(tmp_path))
    runtime.save_checkpoint(manager, report, next_iteration=2)
    feeder.close()

    fresh = _feeder(3)
    restored, report2, next_it = FaultTolerantRuntime.restore(
        manager.latest(), graphs, workload, RapPlanner, feeder=fresh
    )
    assert restored.feeder is fresh
    assert restored.batches_ingested == 0  # counters are per-process
    restored.run(2, start_iteration=next_it, report=report2)
    fresh.close()
    assert restored.batches_ingested == 2  # iterations 2 and 3
