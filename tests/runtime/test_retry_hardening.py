"""Retry hardening: deterministic jitter and the per-epoch retry budget."""

import random

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    KERNEL_FAILURE,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    RetryPolicy,
)

BATCH = 512


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=BATCH)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=2, local_batch=BATCH
    )
    return graphs, workload


class TestJitter:
    def test_zero_jitter_is_the_legacy_policy(self):
        policy = RetryPolicy()
        assert policy.backoff_us(0) == 25.0
        assert policy.backoff_us(1) == 50.0
        assert policy.backoff_us(0, token="anything") == 25.0

    def test_jitter_is_a_pure_function_of_token_and_attempt(self):
        policy = RetryPolicy(jitter_fraction=0.4)
        a = policy.backoff_us(1, token="3:0:k_hash")
        assert a == policy.backoff_us(1, token="3:0:k_hash")
        # The exact perturbation is pinned to the string-seeded RNG stream.
        u = random.Random("rap-retry:3:0:k_hash:1").random()
        assert a == pytest.approx(50.0 * (1.0 + 0.4 * (2.0 * u - 1.0)))

    def test_distinct_tokens_decorrelate(self):
        policy = RetryPolicy(jitter_fraction=0.4)
        values = {policy.backoff_us(0, token=f"5:{gpu}:k") for gpu in range(8)}
        assert len(values) > 1

    def test_jitter_stays_within_the_fraction(self):
        policy = RetryPolicy(jitter_fraction=0.3)
        for attempt in range(4):
            nominal = RetryPolicy().backoff_us(attempt)
            jittered = policy.backoff_us(attempt, token="t")
            assert abs(jittered - nominal) <= 0.3 * nominal + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError, match="jitter_fraction"):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError, match="retry_budget_per_epoch"):
            RetryPolicy(retry_budget_per_epoch=-1)


class TestEpochBudget:
    def make_runtime(self, setting, policy):
        graphs, workload = setting
        return FaultTolerantRuntime(
            RapPlanner(workload, parallel_search=False),
            graphs,
            injector=FaultInjector(
                specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.9),), seed=4
            ),
            retry_policy=policy,
        )

    def test_storm_exhausts_the_budget_deterministically(self, setting):
        budget = 2
        budgeted_a = self.make_runtime(
            setting, RetryPolicy(retry_budget_per_epoch=budget)
        ).run(8)
        budgeted_b = self.make_runtime(
            setting, RetryPolicy(retry_budget_per_epoch=budget)
        ).run(8)
        # Deterministic: two budgeted runs are bit-identical.
        assert budgeted_a.to_dict() == budgeted_b.to_dict()
        # The budget invariant: retries charged against any one plan epoch
        # never exceed the budget -- once it drains, every further fault in
        # that epoch demotes down the ladder instead of retrying.
        per_epoch: dict[int, int] = {}
        for record in budgeted_a.iterations:
            per_epoch[record.plan_epoch] = per_epoch.get(record.plan_epoch, 0) + record.retries
        assert per_epoch, "storm produced no retry accounting at all"
        assert all(total <= budget for total in per_epoch.values()), per_epoch
        # The storm did push faults past retry into demotion.
        assert budgeted_a.transitions

    def test_budget_state_rides_the_checkpoint(self, setting):
        runtime = self.make_runtime(setting, RetryPolicy(retry_budget_per_epoch=50))
        runtime.run(4)
        state = runtime.state_dict()
        assert state["epoch_retry_used"] == runtime._epoch_retry_used
        # A mid-epoch snapshot carries the partially-drained counter: a
        # resume must not hand the new process a full budget.
        runtime._epoch_retry_used = 7
        assert runtime.state_dict()["epoch_retry_used"] == 7

    def test_budget_refills_on_replan(self, setting):
        runtime = self.make_runtime(setting, RetryPolicy(retry_budget_per_epoch=3))
        runtime.run(6)
        if runtime.plan_epoch > 0:
            # At least one replan happened; the counter was reset then and
            # only re-accumulated within the current epoch.
            assert runtime._epoch_retry_used <= 3 * max(1, runtime.plan_epoch + 1)

    def test_budgeted_run_with_jitter_is_deterministic(self, setting):
        policy = RetryPolicy(jitter_fraction=0.3, retry_budget_per_epoch=4)
        first = self.make_runtime(setting, policy).run(8)
        second = self.make_runtime(setting, policy).run(8)
        assert first.to_dict() == second.to_dict()
