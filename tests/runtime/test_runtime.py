"""Tests for the fault-tolerant runtime: ladder rungs, recovery accounting,
bit-identical pass-through, and report serialization."""

import json

import pytest

from repro.core import RapPlanner, resilience_from_json
from repro.core.serialization import plan_to_json
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    CO_RUN,
    CPU_FALLBACK,
    CPU_POOL_CRASH,
    FUSED_OOM,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    SEQUENTIAL,
    SHARD_RETRY,
    TRAILING,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    LatencyWatchdog,
    ResilienceReport,
)


class ScriptedInjector:
    """Duck-typed injector replaying a hand-written fault schedule."""

    def __init__(self, schedule: dict):
        self.schedule = dict(schedule)

    def faults_for_iteration(self, iteration, plan):
        return list(self.schedule.get(iteration, []))


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=1024)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=1024)
    planner = RapPlanner(workload)
    plan = planner.plan(graphs)
    clean = planner.evaluate(plan)
    return graphs, workload, planner, plan, clean


def make_runtime(setting, schedule=None, **kwargs):
    graphs, _, planner, plan, _ = setting
    kwargs.setdefault(
        "watchdog", LatencyWatchdog(error_threshold=1e9, fault_rate_threshold=1e9)
    )
    injector = ScriptedInjector(schedule or {})
    return FaultTolerantRuntime(planner, graphs, plan=plan, injector=injector, **kwargs)


def placed_sites(plan):
    return [
        (gpu, stage, k)
        for gpu, per_gpu in enumerate(plan.assignments_per_gpu)
        for stage in sorted(per_gpu)
        for k in per_gpu[stage]
    ]


def fused_site(plan):
    for gpu, stage, k in placed_sites(plan):
        if int(k.meta.get("members", 1)) > 1:
            return gpu, stage, k
    raise AssertionError("plan has no fused kernels")


class TestBitIdentical:
    def test_no_faults_matches_direct_evaluation_exactly(self, setting):
        _, _, planner, plan, clean = setting
        runtime = make_runtime(setting)
        for i in range(5):
            record, faults, transitions = runtime.run_iteration(i)
            assert faults == [] and transitions == []
            assert record.iteration_us == clean.iteration_us
            assert record.exposed_us == clean.exposed_preprocessing_us
            assert not record.degraded

    def test_default_injector_is_disabled(self, setting):
        graphs, _, planner, plan, clean = setting
        runtime = FaultTolerantRuntime(planner, graphs, plan=plan)
        report = runtime.run(3)
        assert report.num_faults == 0
        assert all(r.iteration_us == clean.iteration_us for r in report.iterations)


class TestKernelFailure:
    def test_shallow_failure_recovers_in_place(self, setting):
        _, _, _, plan, clean = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=1)
        runtime = make_runtime(setting, {0: [event]})
        record, faults, transitions = runtime.run_iteration(0)
        # Recovered at the co_run rung: no demotion, but the retry cost is real.
        assert transitions == []
        assert record.retries == 1
        assert record.backoff_us > 0
        assert record.recovery_us >= kernel.duration_us
        assert record.iteration_us >= clean.iteration_us
        assert record.degraded

    def test_deep_failure_demotes_to_shard_retry(self, setting):
        _, _, _, plan, _ = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=10)
        runtime = make_runtime(setting, {0: [event]})
        record, _, transitions = runtime.run_iteration(0)
        assert transitions, "exhausted retries must demote"
        assert transitions[0].from_rung == CO_RUN
        assert transitions[0].to_rung in (SHARD_RETRY, TRAILING)
        assert record.recovery_us > 0

    def test_persistent_failure_falls_to_cpu(self, setting):
        _, _, _, plan, clean = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=-1)
        runtime = make_runtime(setting, {0: [event]})
        record, _, transitions = runtime.run_iteration(0)
        assert [t.to_rung for t in transitions] == [TRAILING, SEQUENTIAL, CPU_FALLBACK]
        assert [k.name for k in runtime.cpu_evicted] == [kernel.name]
        assert record.cpu_fallback_us > 0

    def test_cpu_eviction_persists_across_iterations(self, setting):
        _, _, _, plan, clean = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=-1)
        runtime = make_runtime(setting, {0: [event]})
        runtime.run_iteration(0)
        record, faults, _ = runtime.run_iteration(1)
        assert faults == []
        assert runtime.cpu_evicted
        assert record.cpu_fallback_us > 0  # host pool keeps paying for the kernel


class TestLatencyOverrun:
    def test_unshardable_overrun_demotes_to_trailing(self, setting):
        _, _, _, plan, clean = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(LATENCY_OVERRUN, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, magnitude=1000.0)
        runtime = make_runtime(setting, {0: [event]})
        record, _, transitions = runtime.run_iteration(0)
        assert transitions[-1].to_rung == TRAILING
        # A kernel inflated 1000x and exposed must dominate the iteration.
        assert record.exposed_us > clean.exposed_preprocessing_us
        assert record.iteration_us > clean.iteration_us

    def test_moderate_overrun_resharded_or_absorbed(self, setting):
        _, _, _, plan, clean = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(LATENCY_OVERRUN, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, magnitude=4.0)
        runtime = make_runtime(setting, {0: [event]})
        record, _, transitions = runtime.run_iteration(0)
        # Either the inflated kernel still fits the stage budget (absorbed) or
        # it was sharded with the remainder trailing -- never dropped.
        assert record.iteration_us >= clean.iteration_us
        for t in transitions:
            assert t.to_rung in (SHARD_RETRY, TRAILING)


class TestFusedOom:
    def test_oom_defuses_into_members(self, setting):
        _, _, _, plan, _ = setting
        gpu, stage, kernel = fused_site(plan)
        event = FaultEvent(FUSED_OOM, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=1)
        runtime = make_runtime(setting, {0: [event]})
        record, _, transitions = runtime.run_iteration(0)
        assert [t.to_rung for t in transitions] == [SHARD_RETRY]
        assert "de-fused" in transitions[0].reason
        assert record.recovery_us >= kernel.duration_us  # the OOM'd launch

    def test_persistent_oom_walks_the_whole_ladder(self, setting):
        _, _, _, plan, _ = setting
        gpu, stage, kernel = fused_site(plan)
        event = FaultEvent(FUSED_OOM, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=-1)
        runtime = make_runtime(setting, {0: [event]})
        _, _, transitions = runtime.run_iteration(0)
        assert [t.to_rung for t in transitions] == [
            SHARD_RETRY, TRAILING, SEQUENTIAL, CPU_FALLBACK,
        ]
        # The eviction carries the fused kernel's members, not the fused shell.
        members = list(kernel.meta["member_kernels"])
        assert [k.name for k in runtime.cpu_evicted] == [m.name for m in members]


class TestHostFaults:
    def test_pool_crash_stalls_the_iteration(self, setting):
        _, _, _, plan, clean = setting
        event = FaultEvent(CPU_POOL_CRASH, iteration=0, magnitude=5.0)
        runtime = make_runtime(setting, {0: [event]})
        record, _, _ = runtime.run_iteration(0)
        assert record.cpu_fallback_us == pytest.approx(5_000.0)
        assert record.iteration_us > clean.iteration_us
        assert record.degraded

    def test_plan_drift_inflates_later_iterations(self, setting):
        _, _, _, plan, clean = setting
        event = FaultEvent(PLAN_DRIFT, iteration=0, magnitude=2.0, recover_after=0)
        runtime = make_runtime(setting, {0: [event]})
        runtime.run_iteration(0)
        # The drifted scale sticks: the next (fault-free) iteration still
        # executes 2x-sized kernels against the same placement.
        record, faults, _ = runtime.run_iteration(1)
        assert faults == []
        assert record.iteration_us >= clean.iteration_us
        assert record.exposed_us >= clean.exposed_preprocessing_us


class TestSequentialFallback:
    def test_many_faults_suspend_co_running(self, setting):
        _, _, _, plan, _ = setting
        sites = placed_sites(plan)
        by_gpu = {}
        for gpu, stage, k in sites:
            by_gpu.setdefault(gpu, []).append((gpu, stage, k))
        gpu, targets = next((g, s) for g, s in by_gpu.items() if len(s) >= 3)
        events = [
            FaultEvent(KERNEL_FAILURE, iteration=0, gpu=g, stage=stage,
                       kernel=k.name, recover_after=1)
            for g, stage, k in targets[:3]
        ]
        runtime = make_runtime(setting, {0: [events[0], events[1], events[2]]})
        record, _, transitions = runtime.run_iteration(0)
        seq = [t for t in transitions if t.to_rung == SEQUENTIAL]
        assert seq and seq[0].kernel == "*" and seq[0].gpu == gpu
        assert record.degraded


class TestRunAndReport:
    def test_run_aggregates_everything(self, setting):
        graphs, _, planner, plan, _ = setting
        injector = FaultInjector(
            [
                FaultSpec(KERNEL_FAILURE, rate=0.5, persistence=0.2),
                FaultSpec(LATENCY_OVERRUN, rate=0.3, magnitude=3.0),
                FaultSpec(FUSED_OOM, rate=0.3, persistence=0.2),
                FaultSpec(CPU_POOL_CRASH, rate=0.15),
                FaultSpec(PLAN_DRIFT, rate=0.2, magnitude=1.3),
            ],
            seed=7,
        )
        runtime = FaultTolerantRuntime(planner, graphs, plan=plan, injector=injector)
        report = runtime.run(25)
        assert report.num_iterations == 25
        assert report.num_faults == len(report.faults) > 0
        assert report.degraded_iterations > 0
        assert report.retries > 0
        assert set(report.faults_by_kind()) <= {
            KERNEL_FAILURE, LATENCY_OVERRUN, FUSED_OOM, CPU_POOL_CRASH, PLAN_DRIFT,
        }
        assert report.mean_iteration_us > 0
        assert report.summary()

    def test_same_seed_same_report(self, setting):
        graphs, _, planner, plan, _ = setting
        specs = [FaultSpec(KERNEL_FAILURE, rate=0.5), FaultSpec(PLAN_DRIFT, rate=0.3)]

        def run_once():
            runtime = FaultTolerantRuntime(
                planner, graphs, plan=plan, injector=FaultInjector(specs, seed=11)
            )
            return runtime.run(12)

        assert run_once().to_dict() == run_once().to_dict()

    def test_recovery_path_reconstruction(self, setting):
        _, _, _, plan, _ = setting
        gpu, stage, kernel = fused_site(plan)
        event = FaultEvent(FUSED_OOM, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=-1)
        runtime = make_runtime(setting, {0: [event]})
        report = runtime.run(2)
        path = report.recovery_path(kernel.name, iteration=0)
        assert path == [CO_RUN, SHARD_RETRY, TRAILING, SEQUENTIAL, CPU_FALLBACK]
        assert report.rungs_reached()[CPU_FALLBACK] == 1

    def test_watchdog_triggers_replan(self, setting):
        graphs, _, planner, plan, _ = setting
        injector = FaultInjector([FaultSpec(PLAN_DRIFT, rate=1.0, magnitude=2.0)], seed=3)
        runtime = FaultTolerantRuntime(
            planner,
            graphs,
            plan=plan,
            injector=injector,
            watchdog=LatencyWatchdog(error_threshold=0.2, window=1),
        )
        report = runtime.run(8)
        assert report.replans >= 1
        assert any(r.replanned for r in report.iterations)

    def test_report_round_trips_through_plan_artifact(self, setting, tmp_path):
        graphs, workload, planner, plan, _ = setting
        gpu, stage, kernel = placed_sites(plan)[0]
        event = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                           kernel=kernel.name, recover_after=-1)
        runtime = make_runtime(setting, {0: [event]})
        report = runtime.run(3)

        payload = plan_to_json(plan, resilience=report.to_dict())
        assert json.loads(payload)["resilience"]
        restored = resilience_from_json(payload)
        rebuilt = ResilienceReport.from_dict(restored)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.recovery_path(kernel.name) == report.recovery_path(kernel.name)

    def test_resilience_absent_returns_none(self, setting):
        _, _, _, plan, _ = setting
        assert resilience_from_json(plan_to_json(plan)) is None


class TestValidation:
    def test_rejects_bad_iteration_count(self, setting):
        runtime = make_runtime(setting)
        with pytest.raises(ValueError):
            runtime.run(0)

    def test_rejects_bad_sequential_threshold(self, setting):
        graphs, _, planner, plan, _ = setting
        with pytest.raises(ValueError):
            FaultTolerantRuntime(planner, graphs, plan=plan, sequential_fault_threshold=0)
