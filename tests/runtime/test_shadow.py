"""Shadow planning: guarded promotion, probation, and automatic rollback.

Covers the guardrail state machine in isolation, the full
drift -> candidate -> promotion -> probation cycle through the runtime
(commit, rollback, and membership-abort outcomes), bit-identical replay
under a fixed seed, transparency when detached, and resume mid-probation.
"""

import json

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    GPU_LOST,
    PROBATION_ABORTED,
    PROBATION_COMMITTED,
    PROBATION_ROLLED_BACK,
    CheckpointManager,
    FaultEvent,
    FaultTolerantRuntime,
    RunJournal,
    ShadowConfig,
    ShadowObservation,
    ShadowPlanner,
    SimulatedKill,
    validate_records,
)
from repro.telemetry import DriftDetector, LatencyDrift, TelemetrySession

NUM_GPUS = 2
BATCH = 1024

#: Sustained drift that exposes preprocessing latency, so a recalibrated
#: candidate has a real win for the guardrail to measure.
SUSTAINED = [LatencyDrift("SigridHash", 20.0, start_iteration=2)]
#: A second drift landing mid-probation: the promoted plan's realized
#: latency regresses past the threshold and must be rolled back.
REGRESSING = SUSTAINED + [LatencyDrift("MapId", 20.0, start_iteration=6)]


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(2, rows=BATCH)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=NUM_GPUS, local_batch=BATCH)
    return graphs, workload


def make_runtime(setting, shadow=None, drift_schedule=(), injector=None, journal=None):
    graphs, workload = setting
    planner = RapPlanner(workload)
    telemetry = TelemetrySession(drift_detector=DriftDetector(threshold=0.25, window=3))
    return FaultTolerantRuntime(
        planner,
        graphs,
        injector=injector,
        telemetry=telemetry,
        drift_schedule=drift_schedule,
        shadow=shadow,
        journal=journal,
    )


def trail(report):
    return [(r.iteration, r.iteration_us, r.exposed_us, r.replanned) for r in report.iterations]


class ScriptedInjector:
    def __init__(self, schedule):
        self.schedule = dict(schedule)

    def faults_for_iteration(self, iteration, plan):
        return list(self.schedule.get(iteration, []))


def gpu_lost(iteration, gpu):
    return FaultEvent(kind=GPU_LOST, iteration=iteration, gpu=gpu, recover_after=-1)


def obs(iteration, plan_epoch=0, exposed_us=100.0, iteration_us=1000.0, scale=1.0):
    return ShadowObservation(
        iteration=iteration,
        plan_epoch=plan_epoch,
        scale=scale,
        drift_factors={},
        exposed_us=exposed_us,
        iteration_us=iteration_us,
    )


class TestShadowConfig:
    def test_defaults_valid(self):
        config = ShadowConfig()
        assert config.promote_margin == 0.10
        assert config.probation_iters == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"promote_margin": 0.0},
            {"promote_margin": -0.1},
            {"hysteresis": -0.01},
            {"probation_iters": 0},
            {"rollback_threshold": 0.0},
            {"eval_every": -1},
            {"window": 0},
            {"cooldown_iters": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShadowConfig(**kwargs)

    def test_dict_round_trip(self):
        config = ShadowConfig(promote_margin=0.2, probation_iters=3)
        assert ShadowConfig.from_dict(config.to_dict()) == config


class TestGuardrail:
    def test_win_below_margin_declines(self):
        shadow = ShadowPlanner(config=ShadowConfig(promote_margin=0.10))
        verdict = shadow.judge(5, 1000.0, 950.0, "drift")  # 5% win
        assert not verdict.promote
        assert verdict.predicted_win == pytest.approx(0.05)
        assert verdict.required_win == pytest.approx(0.10)

    def test_win_at_margin_promotes(self):
        shadow = ShadowPlanner(config=ShadowConfig(promote_margin=0.10))
        verdict = shadow.judge(5, 1000.0, 900.0, "drift")
        assert verdict.promote

    def test_zero_baseline_never_promotes(self):
        """Nothing exposed means nothing to improve, whatever the candidate."""
        shadow = ShadowPlanner()
        verdict = shadow.judge(5, 0.0, 0.0, "cadence")
        assert not verdict.promote
        assert verdict.predicted_win == 0.0

    def test_hysteresis_raises_bar_after_rollback(self):
        shadow = ShadowPlanner(config=ShadowConfig(promote_margin=0.10, hysteresis=0.05))
        verdict = shadow.judge(5, 1000.0, 880.0, "drift")  # 12% win clears 10%
        assert verdict.promote
        shadow.begin_probation(
            5, verdict, predicted_exposed_us=880.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1, anchor={},
        )
        for i in range(6, 8):
            action = shadow.observe(obs(i, plan_epoch=1, iteration_us=2000.0))
            if action:
                assert action == PROBATION_ROLLED_BACK
                break
        shadow.finish_probation(PROBATION_ROLLED_BACK, i)
        # The same 12% win no longer clears the widened 15% bar.
        verdict = shadow.judge(20, 1000.0, 880.0, "drift")
        assert verdict.required_win == pytest.approx(0.15)
        assert not verdict.promote

    def test_commit_clears_hysteresis(self):
        shadow = ShadowPlanner(config=ShadowConfig(probation_iters=1))
        shadow._post_rollback = True
        verdict = shadow.judge(5, 1000.0, 700.0, "drift")
        shadow.begin_probation(
            5, verdict, predicted_exposed_us=700.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1, anchor={},
        )
        assert shadow.observe(obs(6, plan_epoch=1)) == PROBATION_COMMITTED
        shadow.finish_probation(PROBATION_COMMITTED, 6)
        assert shadow.required_win == pytest.approx(shadow.config.promote_margin)


class TestPacingAndTriggers:
    def test_candidate_needs_full_window(self):
        shadow = ShadowPlanner(config=ShadowConfig(window=4, eval_every=1))
        for i in range(3):
            shadow.observe(obs(i))
            assert not shadow.wants_candidate(i, 0)
        shadow.observe(obs(3))
        assert shadow.wants_candidate(3, 0)

    def test_window_split_by_epoch(self):
        """Entries measured under an old plan never score a new epoch."""
        shadow = ShadowPlanner(config=ShadowConfig(window=4))
        for i in range(4):
            shadow.observe(obs(i, plan_epoch=0))
        shadow.observe(obs(4, plan_epoch=1))
        assert len(shadow.window_for_epoch(0)) == 3
        assert len(shadow.window_for_epoch(1)) == 1
        assert not shadow.window_ready(1)

    def test_trigger_beats_cadence(self):
        shadow = ShadowPlanner(config=ShadowConfig(window=2, eval_every=100))
        shadow.observe(obs(0))
        shadow.observe(obs(1))
        assert not shadow.wants_candidate(1, 0)
        shadow.note_trigger(1, "drift")
        assert shadow.wants_candidate(1, 0)
        shadow.judge(1, 1000.0, 990.0, shadow.pending_trigger)
        assert shadow.pending_trigger is None  # judge consumes it

    def test_trigger_suppressed_during_probation(self):
        shadow = ShadowPlanner(config=ShadowConfig(window=1))
        verdict = shadow.judge(3, 1000.0, 500.0, "drift")
        shadow.begin_probation(
            3, verdict, predicted_exposed_us=500.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1, anchor={},
        )
        shadow.note_trigger(4, "watchdog")
        assert shadow.pending_trigger is None
        assert shadow.suppressed_triggers == 1
        assert not shadow.wants_candidate(4, 1)

    def test_cooldown_blocks_next_evaluation(self):
        shadow = ShadowPlanner(config=ShadowConfig(window=1, eval_every=1, cooldown_iters=5))
        verdict = shadow.judge(3, 1000.0, 500.0, "drift")
        shadow.begin_probation(
            3, verdict, predicted_exposed_us=500.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1, anchor={},
        )
        shadow.finish_probation(PROBATION_COMMITTED, 6)
        shadow.observe(obs(7, plan_epoch=1))
        assert not shadow.wants_candidate(7, 1)  # inside cooldown
        shadow.observe(obs(12, plan_epoch=1))
        assert shadow.wants_candidate(12, 1)

    def test_double_probation_rejected(self):
        shadow = ShadowPlanner()
        verdict = shadow.judge(3, 1000.0, 500.0, "drift")
        shadow.begin_probation(
            3, verdict, predicted_exposed_us=500.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1, anchor={},
        )
        with pytest.raises(RuntimeError):
            shadow.begin_probation(
                4, verdict, predicted_exposed_us=500.0, predicted_iteration_us=1000.0,
                baseline_iteration_us=1000.0, from_epoch=1, to_epoch=2, anchor={},
            )
        with pytest.raises(RuntimeError):
            ShadowPlanner().finish_probation(PROBATION_COMMITTED, 4)


class TestShadowStateRoundTrip:
    def test_mid_probation_state_round_trips(self):
        shadow = ShadowPlanner(config=ShadowConfig(probation_iters=4))
        for i in range(4):
            shadow.observe(obs(i))
        verdict = shadow.judge(3, 1000.0, 500.0, "drift")
        shadow.begin_probation(
            3, verdict, predicted_exposed_us=500.0, predicted_iteration_us=1000.0,
            baseline_iteration_us=1000.0, from_epoch=0, to_epoch=1,
            anchor={"directory": "ckpt-00000004-anchor", "plan": "{}"},
        )
        shadow.observe(obs(4, plan_epoch=1))
        state = json.loads(json.dumps(shadow.state_dict()))  # must be JSON-clean
        # Config is constructor-owned (the state echo exists for resume
        # compatibility checks), so the clone is built with the same one.
        clone = ShadowPlanner(config=ShadowConfig(probation_iters=4))
        clone.load_state(state)
        assert clone.in_probation
        assert clone.anchor["directory"] == "ckpt-00000004-anchor"
        assert clone.counters() == shadow.counters()
        assert clone.state_dict() == shadow.state_dict()
        # Both finish identically from the restored point.
        assert clone.observe(obs(5, plan_epoch=1)) == shadow.observe(obs(5, plan_epoch=1))


class TestFullCycle:
    def test_rollback_cycle_and_journal(self, setting, tmp_path):
        """drift -> candidate -> promotion -> injected regression -> rollback,
        with the whole transaction narrated in the journal."""
        journal = RunJournal(tmp_path / "journal.jsonl")
        shadow = ShadowPlanner()
        with journal:
            runtime = make_runtime(
                setting, shadow=shadow, drift_schedule=REGRESSING, journal=journal
            )
            runtime.run(14)
        assert shadow.counters()["promotions"] == 1
        assert shadow.counters()["rollbacks"] == 1
        assert shadow.counters()["commits"] == 0
        records = RunJournal.read(tmp_path / "journal.jsonl")
        promotions = [r for r in records if r["type"] == "promotion"]
        results = [r for r in records if r["type"] == "promotion_result"]
        assert len(promotions) == 1 and len(results) == 1
        assert results[0]["outcome"] == PROBATION_ROLLED_BACK
        # The rollback happened within the probation window.
        assert results[0]["iteration"] - promotions[0]["iteration"] <= shadow.config.probation_iters
        # The swap and the rollback are separate plan generations.
        assert results[0]["plan_epoch"] > promotions[0]["plan_epoch"]
        errors, warnings = validate_records(records)
        assert errors == [] and warnings == []

    def test_commit_cycle(self, setting):
        shadow = ShadowPlanner(config=ShadowConfig(rollback_threshold=0.30))
        runtime = make_runtime(setting, shadow=shadow, drift_schedule=SUSTAINED)
        runtime.run(14)
        counters = shadow.counters()
        assert counters["promotions"] == 1
        assert counters["commits"] == 1
        assert counters["rollbacks"] == 0
        assert not runtime.watchdog.suppressed
        assert shadow.last_realized_win is not None

    def test_membership_change_aborts_probation(self, setting):
        """Losing a GPU mid-probation voids the comparison: the anchor plan
        was searched for a fleet that no longer exists."""
        shadow = ShadowPlanner(config=ShadowConfig(rollback_threshold=0.30))
        runtime = make_runtime(
            setting, shadow=shadow, drift_schedule=SUSTAINED,
            injector=ScriptedInjector({6: [gpu_lost(6, 1)]}),
        )
        runtime.run(12)
        counters = shadow.counters()
        assert counters["promotions"] == 1
        assert counters["aborts"] == 1
        assert counters["commits"] == 0 and counters["rollbacks"] == 0
        assert not shadow.in_probation
        assert not runtime.watchdog.suppressed

    def test_cycle_is_bit_identical_under_seed(self, setting):
        first = make_runtime(setting, shadow=ShadowPlanner(), drift_schedule=REGRESSING)
        second = make_runtime(setting, shadow=ShadowPlanner(), drift_schedule=REGRESSING)
        r1, r2 = first.run(14), second.run(14)
        assert trail(r1) == trail(r2)
        assert first.shadow.state_dict() == second.shadow.state_dict()

    def test_watchdog_suppressed_exactly_during_probation(self, setting):
        shadow = ShadowPlanner(config=ShadowConfig(rollback_threshold=0.30))
        runtime = make_runtime(setting, shadow=shadow, drift_schedule=SUSTAINED)
        suppressed_at = []
        original = runtime._shadow_step

        def spy(iteration, record, report):
            result = original(iteration, record, report)
            if runtime.watchdog.suppressed:
                suppressed_at.append(iteration)
            return result

        runtime._shadow_step = spy
        runtime.run(14)
        assert suppressed_at, "probation never opened"
        # Suppression covers a contiguous probation window, then lifts.
        assert suppressed_at == list(range(min(suppressed_at), max(suppressed_at) + 1))
        assert not runtime.watchdog.suppressed

    def test_shadow_metrics_exported(self, setting):
        shadow = ShadowPlanner()
        runtime = make_runtime(setting, shadow=shadow, drift_schedule=REGRESSING)
        runtime.run(14)
        rendered = runtime.telemetry.prometheus_text()
        assert "rap_shadow_candidates_total" in rendered
        assert "rap_shadow_promotions_total" in rendered
        assert "rap_shadow_rollbacks_total" in rendered
        assert 'rap_shadow_probation_outcomes_total{outcome="rolled_back"}' in rendered


class TestTransparencyWhenDetached:
    def test_no_shadow_matches_plain_run(self, setting):
        """shadow=None leaves every path untouched: same trajectory, same
        checkpoint bytes, same journal shape as before the feature existed."""
        plain = make_runtime(setting, drift_schedule=REGRESSING)
        detached = make_runtime(setting, shadow=None, drift_schedule=REGRESSING)
        assert trail(plain.run(14)) == trail(detached.run(14))
        state = detached.state_dict()
        assert "shadow" not in state

    def test_attached_but_quiet_shadow_never_perturbs_live_run(self, setting):
        """With no drift the guardrail declines every candidate, and the
        live trajectory is identical to a run without the subsystem."""
        plain = make_runtime(setting)
        shadowed = make_runtime(setting, shadow=ShadowPlanner())
        assert trail(plain.run(10)) == trail(shadowed.run(10))
        assert shadowed.shadow.counters()["promotions"] == 0


class TestResumeMidProbation:
    def test_kill_inside_probation_replays_outcome(self, setting, tmp_path):
        """A crash between promotion and settlement resumes into the open
        probation and reaches the same outcome at the same iteration."""
        graphs, workload = setting

        def fresh_shadow():
            # Sustained drift + relaxed threshold: promotion at iteration 3,
            # probation spans 4..8, so the cadence checkpoint at 5 and the
            # kill both land inside the open transaction.
            return ShadowPlanner(config=ShadowConfig(rollback_threshold=0.30))

        def build(shadow, journal=None):
            return make_runtime(
                setting, shadow=shadow, drift_schedule=SUSTAINED, journal=journal
            )

        baseline_shadow = fresh_shadow()
        baseline_report = build(baseline_shadow).run(14)

        checkpoints = CheckpointManager(tmp_path / "ckpts")
        journal = RunJournal(tmp_path / "ckpts" / "journal.jsonl")
        killed_shadow = fresh_shadow()
        with journal:
            runtime = build(killed_shadow, journal=journal)
            with pytest.raises(SimulatedKill):
                runtime.run(14, checkpoints=checkpoints, checkpoint_every=5, kill_after=6)
        assert killed_shadow.in_probation

        snapshot = checkpoints.latest()
        assert snapshot is not None
        assert "probation" in snapshot.state["shadow"]
        journal = RunJournal(tmp_path / "ckpts" / "journal.jsonl")
        resumed_shadow = fresh_shadow()
        with journal:
            resumed, report, start = FaultTolerantRuntime.restore(
                snapshot,
                graphs,
                workload,
                lambda wl: RapPlanner(wl),
                journal=journal,
                telemetry=TelemetrySession(
                    drift_detector=DriftDetector(threshold=0.25, window=3)
                ),
                drift_schedule=SUSTAINED,
                shadow=resumed_shadow,
            )
            assert resumed_shadow.in_probation
            report = resumed.run(
                14 - start, start_iteration=start, report=report,
                checkpoints=checkpoints, checkpoint_every=5,
            )
        assert resumed_shadow.counters() == baseline_shadow.counters()
        assert trail(report) == trail(baseline_report)
        records = RunJournal.read(tmp_path / "ckpts" / "journal.jsonl")
        errors, _ = validate_records(records)
        assert errors == []

    def test_restore_repins_anchor(self, setting, tmp_path):
        """A resumed mid-probation run re-pins the anchor so cadence
        checkpoints cannot prune the rollback target (pins are in-memory)."""
        graphs, workload = setting
        config = ShadowConfig(rollback_threshold=0.30)
        checkpoints = CheckpointManager(tmp_path / "ckpts")
        runtime = make_runtime(
            setting, shadow=ShadowPlanner(config=config), drift_schedule=SUSTAINED
        )
        with pytest.raises(SimulatedKill):
            runtime.run(14, checkpoints=checkpoints, checkpoint_every=5, kill_after=6)
        anchor_name = runtime.shadow.anchor["directory"]
        assert anchor_name in checkpoints.pinned

        fresh = CheckpointManager(tmp_path / "ckpts")  # pins do not persist
        assert anchor_name not in fresh.pinned
        snapshot = fresh.latest()
        shadow = ShadowPlanner(config=config)
        resumed, report, start = FaultTolerantRuntime.restore(
            snapshot, graphs, workload, lambda wl: RapPlanner(wl),
            telemetry=TelemetrySession(
                drift_detector=DriftDetector(threshold=0.25, window=3)
            ),
            drift_schedule=SUSTAINED,
            shadow=shadow,
        )
        resumed.run(14 - start, start_iteration=start, report=report,
                    checkpoints=fresh, checkpoint_every=5)
        # run() re-pinned the anchor on entry; by now probation has settled
        # and the anchor was unpinned again.
        assert not shadow.in_probation
        assert anchor_name not in fresh.pinned
