"""Runtime <-> telemetry integration: bit-identity when off, drift-triggered
recalibration and replanning, and checkpoint resume with calibration state."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import CheckpointManager, FaultTolerantRuntime, SimulatedKill
from repro.telemetry import (
    CalibratedPredictor,
    DriftDetector,
    LatencyDrift,
    TelemetrySession,
)

NUM_GPUS = 2
BATCH = 1024


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=BATCH)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=NUM_GPUS, local_batch=BATCH
    )
    return graphs, workload


def make_runtime(setting, telemetry=None, drift_schedule=()):
    graphs, workload = setting
    planner = RapPlanner(workload)
    return FaultTolerantRuntime(
        planner, graphs, telemetry=telemetry, drift_schedule=drift_schedule
    )


def report_latencies(report):
    return [(r.iteration, r.iteration_us, r.exposed_us) for r in report.iterations]


class TestZeroCostWhenOff:
    def test_telemetry_off_matches_no_telemetry(self, setting):
        """--no-telemetry runs are bit-identical to telemetry-enabled runs
        when nothing drifts: recording is read-only."""
        plain = make_runtime(setting).run(6)
        instrumented = make_runtime(setting, telemetry=TelemetrySession()).run(6)
        assert report_latencies(plain) == report_latencies(instrumented)

    def test_telemetry_off_checkpoint_state_unchanged(self, setting):
        with_t = make_runtime(setting, telemetry=TelemetrySession())
        without = make_runtime(setting)
        without.run(3)
        with_t.run(3)
        assert "calibration" not in without.state_dict()
        assert "drift_schedule" not in without.state_dict()
        assert "calibration" in with_t.state_dict()

    def test_oracle_predictions_keep_detector_quiet(self, setting):
        telemetry = TelemetrySession()
        make_runtime(setting, telemetry=telemetry).run(6)
        assert telemetry.drift_events == []
        assert telemetry.residual.total_samples > 0
        # Oracle predictions match the simulator exactly: no corrections.
        assert all(c == 1.0 for c in telemetry.residual.corrections().values())


class TestDriftAdaptation:
    def test_drift_fires_detector_and_replans(self, setting):
        telemetry = TelemetrySession(drift_detector=DriftDetector(threshold=0.25, window=3))
        runtime = make_runtime(
            setting,
            telemetry=telemetry,
            drift_schedule=[LatencyDrift("Clamp", 2.5, start_iteration=2)],
        )
        report = runtime.run(10)
        assert len(telemetry.drift_events) >= 1
        assert telemetry.drift_events[0].worst_op_type == "Clamp"
        assert report.replans >= 1
        assert runtime._calibrated
        predictor = runtime.planner.cost_model.predictor
        assert isinstance(predictor, CalibratedPredictor)
        assert predictor.residual.correction("Clamp") == pytest.approx(2.5, rel=0.01)

    def test_drift_visible_only_through_observations(self, setting):
        """A per-op factor hides under training overlap -- iteration latency
        barely moves -- so only the observed-vs-predicted residual stream
        reveals it. This is exactly why the calibration loop exists."""
        telemetry = TelemetrySession()
        make_runtime(
            setting,
            telemetry=telemetry,
            drift_schedule=[LatencyDrift("Clamp", 3.0, start_iteration=0)],
        ).run(4)
        clamp = telemetry.residual.samples_for("Clamp")
        assert clamp
        for s in clamp:
            assert s.observed_us == pytest.approx(3.0 * s.predicted_us)
        other = telemetry.residual.samples_for("FillNull")
        for s in other:
            assert s.observed_us == pytest.approx(s.predicted_us)

    def test_drift_window_expires(self, setting):
        telemetry = TelemetrySession()
        runtime = make_runtime(
            setting,
            telemetry=telemetry,
            drift_schedule=[LatencyDrift("Clamp", 2.5, start_iteration=1, end_iteration=3)],
        )
        report = runtime.run(8)
        # After the window closes the run returns to the transparent path:
        # late iterations match an undisturbed run's latencies.
        plain = make_runtime(setting).run(8)
        assert report.iterations[-1].iteration_us == pytest.approx(
            plain.iterations[-1].iteration_us
        )

    def test_calibration_reduces_mape(self, setting):
        telemetry = TelemetrySession()
        make_runtime(
            setting,
            telemetry=telemetry,
            drift_schedule=[LatencyDrift("Clamp", 2.5, start_iteration=0)],
        ).run(8)
        assert telemetry.calibrated_mape < telemetry.predictor_mape


class TestCheckpointResumeWithCalibration:
    def run_with_kill(self, setting, tmp_path, kill_after):
        graphs, workload = setting
        schedule = [LatencyDrift("Clamp", 2.5, start_iteration=2)]
        telemetry = TelemetrySession()
        runtime = make_runtime(setting, telemetry=telemetry, drift_schedule=schedule)
        manager = CheckpointManager(tmp_path)
        try:
            runtime.run(12, checkpoints=manager, checkpoint_every=2, kill_after=kill_after)
        except SimulatedKill:
            pass
        resumed_telemetry = TelemetrySession()
        restored, report, next_iteration = FaultTolerantRuntime.restore(
            manager.latest(),
            graphs,
            workload,
            make_planner=RapPlanner,
            telemetry=resumed_telemetry,
        )
        report = restored.run(
            12 - next_iteration, start_iteration=next_iteration, report=report
        )
        return report, restored, resumed_telemetry

    def test_resume_replays_bit_identically(self, setting, tmp_path):
        telemetry = TelemetrySession()
        uninterrupted = make_runtime(
            setting,
            telemetry=telemetry,
            drift_schedule=[LatencyDrift("Clamp", 2.5, start_iteration=2)],
        ).run(12)
        resumed_report, _, _ = self.run_with_kill(setting, tmp_path, kill_after=7)
        assert report_latencies(resumed_report) == report_latencies(uninterrupted)

    def test_resume_restores_calibration_state(self, setting, tmp_path):
        _, restored, resumed_telemetry = self.run_with_kill(
            setting, tmp_path, kill_after=7
        )
        # The kill lands after the drift fired at ~iteration 4, so the
        # restored runtime must come back already calibrated.
        assert restored._calibrated
        predictor = restored.planner.cost_model.predictor
        assert isinstance(predictor, CalibratedPredictor)
        assert predictor.residual is resumed_telemetry.residual

    def test_resume_echo_restores_drift_schedule(self, setting, tmp_path):
        graphs, workload = setting
        schedule = [LatencyDrift("Clamp", 2.5, start_iteration=2)]
        runtime = make_runtime(
            setting, telemetry=TelemetrySession(), drift_schedule=schedule
        )
        manager = CheckpointManager(tmp_path)
        try:
            runtime.run(12, checkpoints=manager, checkpoint_every=2, kill_after=5)
        except SimulatedKill:
            pass
        # No explicit schedule on restore: the checkpoint echo supplies it.
        restored, _, _ = FaultTolerantRuntime.restore(
            manager.latest(),
            graphs,
            workload,
            make_planner=RapPlanner,
            telemetry=TelemetrySession(),
        )
        assert restored.drift_schedule == schedule
