"""Engine-backed functional verification riding along the simulated run."""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import (
    DataPathVerifier,
    DataVerificationError,
    FaultTolerantRuntime,
    RunJournal,
)


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(1, rows=128)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=2, local_batch=128)
    return graphs, schema, workload


def test_runtime_periodic_verification(setting, tmp_path):
    graphs, schema, workload = setting
    verifier = DataPathVerifier(schema, every=2, seed=5)
    journal = RunJournal(tmp_path / "journal.jsonl")
    runtime = FaultTolerantRuntime(
        RapPlanner(workload), graphs, journal=journal, verifier=verifier
    )
    runtime.run(5)
    journal.close()
    # Iterations 0, 2, 4 hit the cadence; every check was bit-identical.
    assert [v.iteration for v in verifier.history] == [0, 2, 4]
    assert all(v.ok for v in verifier.history)
    assert all(v.columns_checked > 0 for v in verifier.history)
    records = [r for r in RunJournal.read(tmp_path / "journal.jsonl") if r["type"] == "data_verify"]
    assert len(records) == 3
    assert all(r["ok"] for r in records)


def test_verifier_caches_programs_per_epoch(setting):
    graphs, schema, workload = setting
    verifier = DataPathVerifier(schema, every=1)
    planner = RapPlanner(workload)
    plan = planner.plan(graphs)
    verifier.verify(plan, plan_epoch=0, iteration=0)
    programs = verifier._programs
    verifier.verify(plan, plan_epoch=0, iteration=1)
    assert verifier._programs is programs  # same epoch: reused
    verifier.verify(plan, plan_epoch=1, iteration=2)
    assert verifier._programs is not programs  # replan: re-lowered


def test_strict_mode_raises_on_divergence(setting, monkeypatch):
    graphs, schema, workload = setting
    verifier = DataPathVerifier(schema, every=1, strict=True)
    plan = RapPlanner(workload).plan(graphs)
    monkeypatch.setattr(
        DataPathVerifier, "_column_matches", staticmethod(lambda name, out, golden: False)
    )
    with pytest.raises(DataVerificationError, match="diverged"):
        verifier.verify(plan, plan_epoch=0, iteration=0)
    # The failed check is still recorded for the journal.
    assert verifier.history and not verifier.history[-1].ok

    lax = DataPathVerifier(schema, every=1, strict=False)
    result = lax.verify(plan, plan_epoch=0, iteration=0)
    assert not result.ok and result.mismatched
