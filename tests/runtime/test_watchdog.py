"""Tests for the edge-triggered latency watchdog."""

import pytest

from repro.runtime import LatencyWatchdog


class TestValidation:
    def test_rejects_bad_error_threshold(self):
        with pytest.raises(ValueError):
            LatencyWatchdog(error_threshold=0.0)

    def test_rejects_bad_fault_rate_threshold(self):
        with pytest.raises(ValueError):
            LatencyWatchdog(fault_rate_threshold=-1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LatencyWatchdog(window=0)


class TestTrigger:
    def test_accurate_plan_never_fires(self):
        dog = LatencyWatchdog(error_threshold=0.5, window=2)
        for _ in range(10):
            assert not dog.observe(100.0, 104.0).replan

    def test_fires_on_sustained_error(self):
        dog = LatencyWatchdog(error_threshold=0.5, window=2)
        fired = [dog.observe(100.0, 400.0).replan for _ in range(6)]
        assert fired[0]

    def test_fires_once_per_crossing(self):
        """A sustained breach produces exactly one replan until it clears."""
        dog = LatencyWatchdog(error_threshold=0.5, window=1)
        fired = [dog.observe(100.0, 400.0).replan for _ in range(5)]
        assert fired == [True, False, False, False, False]

    def test_rearms_after_signal_clears(self):
        dog = LatencyWatchdog(error_threshold=0.5, window=1)
        assert dog.observe(100.0, 400.0).replan
        assert not dog.observe(100.0, 400.0).replan
        assert not dog.observe(100.0, 100.0).replan  # clears and re-arms
        assert dog.observe(100.0, 400.0).replan  # second crossing fires again

    def test_fault_rate_trigger(self):
        dog = LatencyWatchdog(error_threshold=10.0, fault_rate_threshold=1.0, window=2)
        assert not dog.observe(100.0, 100.0, num_faults=1).replan
        decision = dog.observe(100.0, 100.0, num_faults=3)
        assert decision.replan
        assert "fault rate" in decision.reason

    def test_window_smooths_single_spike(self):
        dog = LatencyWatchdog(error_threshold=0.5, window=4)
        for _ in range(3):
            assert not dog.observe(100.0, 100.0).replan
        # One bad iteration against three good ones stays under the mean.
        assert not dog.observe(100.0, 250.0).replan

    def test_reset_rearms_and_clears_window(self):
        dog = LatencyWatchdog(error_threshold=0.5, window=4)
        assert dog.observe(100.0, 900.0).replan
        dog.reset()
        assert not dog.observe(100.0, 100.0).replan
        assert dog.observe(100.0, 900.0).replan
