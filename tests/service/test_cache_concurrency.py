"""Thread-safety and lock-contention accounting of the shared caches.

The service prices concurrent admissions through one shared
:class:`PlanCache` and one shared :class:`SolveCache`; both must survive
a thread hammer without losing entries or corrupting stats, and a busy
advisory lock must degrade to a *distinct* ``lock_contention`` outcome
rather than a miss or an error.
"""

import os
import threading

import numpy as np
import pytest

from repro.core import PlanCache, RapPlanner, plan_to_json
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.milp.branch_and_bound import MilpSolution
from repro.milp.solve_cache import SolveCache
from repro.preprocessing import build_plan
from repro.telemetry.registry import MetricsRegistry

fcntl = pytest.importorskip("fcntl")

THREADS = 8
ROUNDS = 40


def _hammer(worker) -> list:
    """Run ``worker(thread_index)`` on THREADS threads; collect exceptions."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the list
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestPlanCacheConcurrency:
    def test_text_tier_survives_hammer(self, tmp_path):
        cache = PlanCache(tmp_path)

        def worker(index: int) -> None:
            for round_ in range(ROUNDS):
                key = f"key{(index + round_) % 4}"
                cache.put_text(key, f"payload-{index}-{round_}")
                text = cache.get_text(key)
                assert text is not None and text.startswith("payload-")

        assert _hammer(worker) == []
        assert cache.stats.stores == THREADS * ROUNDS
        # Every surviving entry is one complete payload, never interleaved.
        for key in ("key0", "key1", "key2", "key3"):
            on_disk = (tmp_path / f"{key}.plan.json").read_text()
            assert on_disk.startswith("payload-")

    def test_deserializing_tier_hits_consistently(self, tmp_path):
        graphs, schema = build_plan(0, rows=512)
        workload = TrainingWorkload(
            model_for_plan(graphs, schema), num_gpus=2, local_batch=512
        )
        cache = PlanCache(tmp_path)
        planner = RapPlanner(workload, cache=cache)
        plan = planner.plan(graphs)
        key = planner._cache_key(graphs)
        base_hits = cache.stats.hits
        expected = plan_to_json(plan)

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                warm = cache.get(key, workload, graphs)
                assert warm is not None
                assert plan_to_json(warm) == expected

        assert _hammer(worker) == []
        assert cache.stats.hits == base_hits + THREADS * ROUNDS
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses

    def test_busy_lock_degrades_to_contention_not_miss(self, tmp_path):
        registry = MetricsRegistry()
        cache = PlanCache(tmp_path)
        cache.bind_metrics(registry, cache="plan")
        fd = os.open(tmp_path / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            cache.put_text("contended", "payload")
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        assert cache.stats.lock_contention == 1
        assert cache.stats.misses == 0
        assert cache.stats.stores == 1
        # The memory tier still serves; the disk tier was skipped.
        assert cache.get_text("contended") == "payload"
        assert not (tmp_path / "contended.plan.json").exists()
        snapshot = registry.snapshot()
        series = snapshot["rap_cache_lock_contention_total"]["series"]
        assert [(s["labels"], s["value"]) for s in series] == [
            ({"cache": "plan", "tier": "disk"}, 1.0)
        ]
        # With the lock free again, the same store persists.
        cache.put_text("contended", "payload")
        assert (tmp_path / "contended.plan.json").read_text() == "payload"
        assert cache.stats.lock_contention == 1


class TestSolveCacheConcurrency:
    @staticmethod
    def _solution(seed: int) -> MilpSolution:
        return MilpSolution(
            status="optimal",
            x=np.asarray([float(seed), 1.0, 0.0]),
            objective=float(seed),
            nodes_explored=seed,
            gap=0.0,
        )

    def test_put_get_hammer(self, tmp_path):
        cache = SolveCache(tmp_path)

        def worker(index: int) -> None:
            for round_ in range(ROUNDS):
                key = f"milp{(index + round_) % 4}"
                cache.put(key, self._solution(index))
                solution = cache.get(key)
                assert solution is not None and solution.status == "optimal"

        assert _hammer(worker) == []
        assert cache.stats.stores == THREADS * ROUNDS
        assert cache.stats.hits == THREADS * ROUNDS
        assert cache.stats.misses == 0
        assert cache.stats.lookups == cache.stats.hits

    def test_busy_lock_counts_distinctly(self, tmp_path):
        cache = SolveCache(tmp_path)
        fd = os.open(tmp_path / ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            cache.put("contended", self._solution(3))
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        assert cache.stats.lock_contention == 1
        assert cache.stats.misses == 0
        assert not (tmp_path / "contended.milp.json").exists()
        assert cache.get("contended").objective == 3.0  # memory tier serves


class TestCliSurface:
    def test_cache_stats_line_reports_contention(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        argv = ["plan", "--plan", "0", "--gpus", "2", "--batch", "1024",
                "--plan-cache", str(cache_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 lock-contended" in out
