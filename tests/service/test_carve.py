"""Fair-share math and leftover-capacity carving."""

import pytest

from repro.core.plan_cache import workload_fingerprint
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.gpusim import ResourceVector, StageProfile
from repro.preprocessing import build_plan
from repro.service import CarvedTrainingWorkload, carve_stage, carved_workload, weighted_max_min


@pytest.fixture(scope="module")
def base_workload():
    graphs, schema = build_plan(0, rows=512)
    return TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=512)


class TestWeightedMaxMin:
    def test_lone_tenant_gets_exactly_one(self):
        assert weighted_max_min({"a": 1.0}) == {"a": 1.0}

    def test_equal_weights_split_evenly(self):
        shares = weighted_max_min({"a": 1.0, "b": 1.0})
        assert shares["a"] == pytest.approx(0.5)
        assert shares["b"] == pytest.approx(0.5)

    def test_weights_scale_shares(self):
        shares = weighted_max_min({"a": 1.0, "b": 1.0}, {"a": 3.0, "b": 1.0})
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_capped_demand_redistributes(self):
        # a wants only 0.1; b picks up the slack.
        shares = weighted_max_min({"a": 0.1, "b": 1.0})
        assert shares["a"] == pytest.approx(0.1)
        assert shares["b"] == pytest.approx(0.9)

    def test_total_never_exceeds_capacity(self):
        shares = weighted_max_min(
            {"a": 1.0, "b": 1.0, "c": 1.0}, {"a": 4.0, "b": 2.0, "c": 1.0}
        )
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] > shares["b"] > shares["c"]

    def test_deterministic_across_orderings(self):
        lhs = weighted_max_min({"x": 0.4, "y": 1.0, "z": 0.3})
        rhs = weighted_max_min({"z": 0.3, "x": 0.4, "y": 1.0})
        assert lhs == rhs

    def test_empty(self):
        assert weighted_max_min({}) == {}


class TestCarveStage:
    def test_full_share_is_identity_valued(self):
        stage = StageProfile("mlp", 100.0, ResourceVector(sm=0.4, dram=0.2))
        carved = carve_stage(stage, 1.0)
        assert carved.utilization.sm == pytest.approx(0.4)
        assert carved.utilization.dram == pytest.approx(0.2)

    def test_half_share_halves_leftover(self):
        stage = StageProfile("emb", 100.0, ResourceVector(sm=0.4, dram=0.8))
        carved = carve_stage(stage, 0.5)
        assert carved.utilization.sm == pytest.approx(0.7)   # 1 - 0.5*(1-0.4)
        assert carved.utilization.dram == pytest.approx(0.9)  # 1 - 0.5*(1-0.8)
        assert carved.duration_us == stage.duration_us
        assert carved.name == stage.name

    def test_oversubscribed_demand_clamps(self):
        stage = StageProfile("comm", 10.0, ResourceVector(sm=1.3, dram=0.0))
        carved = carve_stage(stage, 0.5)
        assert carved.utilization.sm == 1.0


class TestCarvedWorkload:
    def test_share_one_returns_base_object(self, base_workload):
        # Bit-identity requires the very same object, not a float-scaled copy.
        assert carved_workload(base_workload, 1.0) is base_workload

    def test_partial_share_shrinks_leftover(self, base_workload):
        carved = carved_workload(base_workload, 0.5)
        assert isinstance(carved, CarvedTrainingWorkload)
        for gpu in range(base_workload.num_gpus):
            for full, cut in zip(
                base_workload.stages_for_gpu(gpu), carved.stages_for_gpu(gpu)
            ):
                assert cut.duration_us == full.duration_us
                assert cut.leftover().sm <= full.leftover().sm + 1e-12
                assert cut.leftover().sm == pytest.approx(0.5 * full.leftover().sm)

    def test_ideal_iteration_unchanged(self, base_workload):
        carved = carved_workload(base_workload, 0.3)
        assert carved.ideal_iteration_us() == pytest.approx(
            base_workload.ideal_iteration_us()
        )

    def test_share_feeds_cache_fingerprint(self, base_workload):
        half = carved_workload(base_workload, 0.5)
        third = carved_workload(base_workload, 1.0 / 3.0)
        fingerprints = {
            workload_fingerprint(base_workload),
            workload_fingerprint(half),
            workload_fingerprint(third),
        }
        assert len(fingerprints) == 3

    @pytest.mark.parametrize("share", [0.0, -0.1, 1.5])
    def test_bad_share_rejected(self, base_workload, share):
        with pytest.raises(ValueError):
            carved_workload(base_workload, share)
