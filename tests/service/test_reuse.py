"""Tenant-invariant plan reuse: rename, canonicalize, specialize."""

import pytest

from repro.core import PlanCache, RapPlanner, plan_to_json
from repro.core.plan_cache import (
    graph_set_fingerprint,
    invariant_graph_set_fingerprint,
    invariant_plan_key,
)
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.service import SharedPlanIndex, canonicalize_plan_text, renamed_model, specialize_plan_text


@pytest.fixture(scope="module")
def tenant_a():
    graphs, schema = build_plan(0, rows=512)
    config = model_for_plan(graphs, schema)
    workload = TrainingWorkload(config, num_gpus=2, local_batch=512)
    return graphs, config, workload


@pytest.fixture(scope="module")
def tenant_b(tenant_a):
    graphs, config, _ = tenant_a
    graphs_b, config_b = renamed_model(graphs, config, "b.")
    workload_b = TrainingWorkload(config_b, num_gpus=2, local_batch=512)
    return graphs_b, config_b, workload_b


class TestRenamedModel:
    def test_names_are_prefixed(self, tenant_a, tenant_b):
        graphs, _, _ = tenant_a
        graphs_b, config_b, _ = tenant_b
        assert {g.name for g in graphs_b} == {f"b.{g.name}" for g in graphs}
        for table in config_b.tables:
            assert table.name.startswith("table:")
            assert table.name.endswith(".b")

    def test_dense_consumer_is_structural(self, tenant_b):
        graphs_b, _, _ = tenant_b
        assert any(g.consumer == "dense" for g in graphs_b)

    def test_isomorphic_under_invariant_fingerprint(self, tenant_a, tenant_b):
        graphs, _, _ = tenant_a
        graphs_b, _, _ = tenant_b
        assert graph_set_fingerprint(graphs) != graph_set_fingerprint(graphs_b)
        assert invariant_graph_set_fingerprint(graphs) == invariant_graph_set_fingerprint(
            graphs_b
        )

    def test_table_sizes_preserved(self, tenant_a, tenant_b):
        # Renaming must NOT fall back to the generic generated-table size.
        _, config, _ = tenant_a
        _, config_b, _ = tenant_b
        assert [t.hash_size for t in config.tables] == [
            t.hash_size for t in config_b.tables
        ]

    def test_placements_isomorphic(self, tenant_a, tenant_b):
        _, _, workload = tenant_a
        _, _, workload_b = tenant_b
        strip = lambda name: name.removeprefix("table:").removesuffix(".b")
        lhs = {strip(t): g for t, g in workload.placement.table_to_gpu.items()}
        rhs = {strip(t): g for t, g in workload_b.placement.table_to_gpu.items()}
        assert lhs == rhs


class TestPlanTextRenaming:
    def test_canonical_form_is_tenant_invariant(self, tenant_a, tenant_b):
        graphs, _, workload = tenant_a
        graphs_b, _, workload_b = tenant_b
        plan_a = RapPlanner(workload).plan(graphs)
        plan_b = RapPlanner(workload_b).plan(graphs_b)
        canon_a = canonicalize_plan_text(plan_to_json(plan_a), graphs)
        canon_b = canonicalize_plan_text(plan_to_json(plan_b), graphs_b)
        assert canon_a == canon_b

    def test_specialize_round_trips_bytes(self, tenant_a):
        graphs, config, workload = tenant_a
        text = plan_to_json(RapPlanner(workload).plan(graphs))
        canonical = canonicalize_plan_text(text, graphs)
        assert specialize_plan_text(canonical, graphs, config.name) == text

    def test_specialize_into_other_tenant_loads(self, tenant_a, tenant_b):
        graphs, _, workload = tenant_a
        graphs_b, config_b, workload_b = tenant_b
        plan_a = RapPlanner(workload).plan(graphs)
        canonical = canonicalize_plan_text(plan_to_json(plan_a), graphs)
        specialized = specialize_plan_text(canonical, graphs_b, config_b.name)
        from repro.core.serialization import plan_from_json

        plan_b = plan_from_json(specialized, workload_b, graphs_b)
        assert plan_to_json(plan_b) == specialized
        assert plan_b.predicted_exposed_us == pytest.approx(plan_a.predicted_exposed_us)
        # Every kernel landed under tenant B's names.
        for per_gpu in plan_b.assignments_per_gpu:
            for kernels in per_gpu.values():
                for kernel in kernels:
                    if not kernel.name.startswith("fused_"):
                        assert ".b" in kernel.name.partition(":")[2]


class TestSharedPlanIndex:
    def _key(self, planner, graphs):
        return invariant_plan_key(
            planner.workload,
            graphs,
            planner.mapping_strategy,
            planner.fusion_enabled,
            planner.interleaving_enabled,
            planner.exact_fusion,
            planner.max_mapping_moves,
            planner.solver,
            predictor_fingerprint=planner._predictor_fingerprint(),
        )

    def test_isomorphic_tenant_hits_without_solver(self, tenant_a, tenant_b, tmp_path):
        graphs, _, workload = tenant_a
        graphs_b, _, workload_b = tenant_b
        cache = PlanCache(tmp_path)
        index = SharedPlanIndex(cache)

        planner_a = RapPlanner(workload, cache=cache)
        plan_a = planner_a.plan(graphs)
        index.store(self._key(planner_a, graphs), plan_to_json(plan_a), graphs)

        planner_b = RapPlanner(workload_b, cache=cache)
        before = planner_b.solver.cache.stats.lookups
        hit = index.lookup(self._key(planner_b, graphs_b), workload_b, graphs_b)
        assert hit is not None
        plan_b, text = hit
        assert planner_b.solver.cache.stats.lookups == before  # no solve at all
        assert planner_b.stats.plans == 0  # the planner never searched
        assert plan_to_json(plan_b) == text
        assert index.hits == 1

    def test_drifted_calibration_fingerprint_misses(self, tenant_a, tenant_b, tmp_path):
        graphs, _, workload = tenant_a
        graphs_b, _, workload_b = tenant_b
        cache = PlanCache(tmp_path)
        index = SharedPlanIndex(cache)
        planner_a = RapPlanner(workload, cache=cache)
        plan_a = planner_a.plan(graphs)
        index.store(self._key(planner_a, graphs), plan_to_json(plan_a), graphs)

        class DriftedPredictor:
            is_fitted = True

            def fingerprint(self):
                return "drifted-calibration"

        planner_b = RapPlanner(workload_b, cache=cache)
        planner_b.set_predictor(DriftedPredictor())
        drifted_key = self._key(planner_b, graphs_b)
        assert drifted_key != self._key(planner_a, graphs)
        assert index.lookup(drifted_key, workload_b, graphs_b) is None
        assert index.misses == 1
