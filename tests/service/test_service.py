"""End-to-end pins for the multi-tenant preprocessing service.

Covers the acceptance criteria of the service subsystem: single-tenant
bit-identity with a standalone runtime, the admit/preempt/resume
lifecycle, fault containment across tenants, warm re-admission through
the shared caches, queue/reject paths, per-tenant journals, and the
``serve`` CLI surface.
"""

import json

import pytest

from repro.cli import main
from repro.core import RapPlanner, plan_to_json
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import FaultTolerantRuntime
from repro.runtime.faults import KERNEL_FAILURE, FaultInjector, FaultSpec
from repro.runtime.journal import RunJournal, validate_records
from repro.runtime.report import ResilienceReport
from repro.service import JobState, PreprocessingService, TenantSpec, parse_tenant_specs
from repro.service.job import DEADLINE_CLASSES
from repro.telemetry.exposition import parse_prometheus_text


def _light(name, **overrides):
    kwargs = dict(name=name, plan_id=0, local_batch=1024, num_iterations=4)
    kwargs.update(overrides)
    return TenantSpec(**kwargs)


class TestSingleTenantBitIdentity:
    """A lone tenant through the service == the same workload standalone."""

    def test_reports_and_plan_match_standalone(self, tmp_path):
        spec = _light("solo", num_iterations=8, fault_rate=0.3, seed=7)

        service = PreprocessingService(tmp_path / "svc", num_gpus=2, telemetry=False)
        service.submit(spec)
        summary = service.run()
        job = service.jobs[0]
        assert summary.job("solo")["state"] == JobState.COMPLETED

        graphs, schema = build_plan(0, rows=1024)
        workload = TrainingWorkload(
            model_for_plan(graphs, schema), num_gpus=2, local_batch=1024
        )
        planner = RapPlanner(workload)
        plan = planner.plan(graphs)
        runtime = FaultTolerantRuntime(
            planner,
            graphs,
            plan=plan,
            injector=FaultInjector(
                specs=(FaultSpec(kind=KERNEL_FAILURE, rate=0.3),), seed=7
            ),
        )
        report = ResilienceReport()
        runtime.run(8, report=report)

        assert plan_to_json(job.runtime.plan) == plan_to_json(runtime.plan)
        assert job.runtime.plan_epoch == runtime.plan_epoch
        assert [r.to_dict() for r in job.report.iterations] == [
            r.to_dict() for r in report.iterations
        ]
        assert len(job.report.faults) == len(report.faults)
        assert job.report.replans == report.replans

    def test_share_is_full_leftover(self, tmp_path):
        service = PreprocessingService(tmp_path, num_gpus=2, telemetry=False)
        service.submit(_light("solo"))
        summary = service.run()
        assert summary.job("solo")["share"] == pytest.approx(1.0)


@pytest.fixture(scope="module")
def lifecycle(tmp_path_factory):
    """The pinned 4-tenant scenario: admit, carve, preempt, resume."""
    root = tmp_path_factory.mktemp("service-lifecycle")
    service = PreprocessingService(root, num_gpus=2)
    service.submit(TenantSpec(name="alice", plan_id=2, local_batch=2048,
                              num_iterations=10, priority="prod", deadline="relaxed"))
    service.submit(TenantSpec(name="bob", plan_id=0, local_batch=1024,
                              num_iterations=12, priority="best_effort"))
    service.submit(TenantSpec(name="dave", plan_id=0, local_batch=1024,
                              num_iterations=12, priority="best_effort",
                              arrive_iteration=2))
    service.submit(TenantSpec(name="carol", plan_id=2, local_batch=2048,
                              num_iterations=6, priority="standard",
                              deadline="strict", arrive_iteration=4))
    summary = service.run()
    return service, summary


class TestLifecycle:
    def test_every_tenant_completes(self, lifecycle):
        _, summary = lifecycle
        assert all(e["state"] == JobState.COMPLETED for e in summary.jobs)

    def test_strict_arrival_preempts_newest_best_effort(self, lifecycle):
        _, summary = lifecycle
        assert summary.job("dave")["preemptions"] == 1
        assert summary.job("bob")["preemptions"] == 0
        history = summary.job("dave")["history"]
        assert any(h.startswith("preempted@4") for h in history)
        assert any(h.startswith("resumed@") for h in history)

    def test_preempted_tenant_still_finishes_all_iterations(self, lifecycle):
        _, summary = lifecycle
        dave = summary.job("dave")
        assert dave["iterations_done"] == 12

    def test_first_admissions_are_cold(self, lifecycle):
        _, summary = lifecycle
        assert summary.job("alice")["history"][0] == "admitted@0:cold"

    def test_preemption_is_metered_per_tenant(self, lifecycle):
        service, _ = lifecycle
        snapshot = service.metrics.registry.snapshot()
        series = snapshot["rap_service_preemptions_total"]["series"]
        assert [(s["labels"], s["value"]) for s in series] == [({"tenant": "dave"}, 1.0)]

    def test_per_tenant_journals_validate(self, lifecycle):
        service, _ = lifecycle
        for tenant in ("alice", "bob", "carol", "dave"):
            path = service.root / "tenants" / tenant / "journal.jsonl"
            records, flaws = RunJournal.scan(path)
            assert records, f"{tenant} journal is empty"
            assert flaws == []
            errors, _ = validate_records(records)
            assert errors == []

    def test_exported_metrics_parse_strictly(self, lifecycle):
        service, _ = lifecycle
        families = parse_prometheus_text(
            (service.root / "service_metrics.prom").read_text()
        )
        assert "rap_service_admissions_total" in families
        assert "rap_service_carve_share" in families
        # The shared caches surface in the same registry, tiered.
        assert "rap_cache_hits_total" in families

    def test_summary_artifact_round_trips(self, lifecycle):
        service, summary = lifecycle
        on_disk = json.loads((service.root / "service_summary.json").read_text())
        assert on_disk == json.loads(
            json.dumps(summary.to_dict(), sort_keys=True)
        )

    def test_service_journal_records_control_plane(self, lifecycle):
        service, _ = lifecycle
        kinds = [r["type"] for r in RunJournal.read(service.root / "service.jsonl")]
        assert "admit" in kinds and "preempt" in kinds
        assert "resume" in kinds and "complete" in kinds


class TestFaultContainment:
    """One tenant's faults never leak into another tenant's run."""

    @staticmethod
    def _victim_trace(root, noisy_fault_rate):
        service = PreprocessingService(root, num_gpus=2, telemetry=False)
        service.submit(_light("noisy", num_iterations=10, priority="best_effort",
                              fault_rate=noisy_fault_rate, seed=11))
        service.submit(_light("victim", num_iterations=10, seed=5))
        service.run()
        victim = next(j for j in service.jobs if j.name == "victim")
        return (
            plan_to_json(victim.runtime.plan),
            victim.runtime.plan_epoch,
            [r.to_dict() for r in victim.report.iterations],
        )

    def test_victim_is_bit_identical_with_and_without_noise(self, tmp_path):
        clean = self._victim_trace(tmp_path / "clean", 0.0)
        noisy = self._victim_trace(tmp_path / "noisy", 0.5)
        assert clean == noisy


class TestWarmReAdmission:
    def test_exact_rerun_hits_without_solver(self, tmp_path):
        first = PreprocessingService(tmp_path / "first", num_gpus=2, telemetry=False)
        first.submit(_light("alice", num_iterations=2))
        cold = first.run()
        assert cold.job("alice")["plan_source"] == "cold"

        second = PreprocessingService(
            tmp_path / "second", num_gpus=2, telemetry=False,
            cache_dir=tmp_path / "first" / "cache",
        )
        second.submit(_light("alice", num_iterations=2))
        warm = second.run()
        assert warm.job("alice")["plan_source"] == "warm-exact"
        assert second.solver.cache.stats.lookups == 0  # no MILP at all
        assert plan_to_json(second.jobs[0].runtime.plan) == plan_to_json(
            first.jobs[0].runtime.plan
        )

    def test_isomorphic_tenant_hits_invariant_tier(self, tmp_path):
        first = PreprocessingService(tmp_path / "first", num_gpus=2, telemetry=False)
        first.submit(_light("alice", num_iterations=2))
        first.run()

        twin = PreprocessingService(
            tmp_path / "twin", num_gpus=2, telemetry=False,
            cache_dir=tmp_path / "first" / "cache",
        )
        twin.submit(_light("zelda", num_iterations=2, rename=True))
        summary = twin.run()
        assert summary.job("zelda")["plan_source"] == "warm-invariant"
        assert twin.solver.cache.stats.lookups == 0
        # The renamed plan landed under zelda's own names.
        assert "zelda" in plan_to_json(twin.jobs[0].runtime.plan)


class TestQueueing:
    def test_max_concurrent_queues_then_admits(self, tmp_path):
        service = PreprocessingService(
            tmp_path, num_gpus=2, max_concurrent=1, telemetry=False
        )
        service.submit(_light("a"))
        service.submit(_light("b"))
        summary = service.run()
        assert summary.ticks == 8  # strictly serial: 4 + 4
        b = summary.job("b")
        assert b["state"] == JobState.COMPLETED
        assert b["history"][0] == "queued@0"
        assert b["admitted_at"] == 4

    def test_impossible_deadline_alone_is_rejected(self, tmp_path, monkeypatch):
        # slowdown is >= 1 by construction, so a sub-1 cap can never hold.
        monkeypatch.setitem(DEADLINE_CLASSES, "strict", 0.99)
        service = PreprocessingService(tmp_path, num_gpus=2, telemetry=False)
        service.submit(_light("doomed", deadline="strict"))
        summary = service.run()
        doomed = summary.job("doomed")
        assert doomed["state"] == JobState.REJECTED
        assert doomed["history"] == ["rejected@0"]

    def test_duplicate_tenant_names_rejected(self, tmp_path):
        service = PreprocessingService(tmp_path, telemetry=False)
        service.submit(_light("a"))
        with pytest.raises(ValueError, match="already submitted"):
            service.submit(_light("a"))


class TestTenantSpecParsing:
    def test_full_grammar(self):
        specs = parse_tenant_specs(
            "alice:plan=2:batch=2048:class=prod:deadline=strict:arrive=3"
            ":iters=7:seed=9:faults=0.25:kind=latency_overrun:rename=1,bob"
        )
        alice, bob = specs
        assert alice.plan_id == 2 and alice.local_batch == 2048
        assert alice.priority == "prod" and alice.deadline == "strict"
        assert alice.arrive_iteration == 3 and alice.num_iterations == 7
        assert alice.seed == 9 and alice.fault_rate == 0.25
        assert alice.fault_kind == "latency_overrun" and alice.rename
        assert bob.priority == "standard" and not bob.rename

    @pytest.mark.parametrize("text", [
        "", "a:plan", "a:plan=9", "a:class=vip", "a,a", "a:mystery=1",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_tenant_specs(text)


class TestServeCli:
    def test_serve_end_to_end(self, tmp_path, capsys):
        root = tmp_path / "root"
        saved = tmp_path / "summary.json"
        code = main([
            "serve",
            "--tenants", "a:plan=0:batch=1024:iters=3,"
                         "b:plan=0:batch=1024:iters=3:class=best_effort",
            "--gpus", "2",
            "--service-root", str(root),
            "--save-summary", str(saved),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Preprocessing service" in out
        assert "admitted=2" in out or "completed=2" in out
        payload = json.loads(saved.read_text())
        assert {e["tenant"] for e in payload["jobs"]} == {"a", "b"}

        # Each tenant's journal passes the post-mortem validator.
        assert main(["journal", str(root / "tenants" / "a" / "journal.jsonl")]) == 0
        assert "journal OK" in capsys.readouterr().out

    def test_serve_rejects_bad_tenants(self, tmp_path, capsys):
        assert main(["serve", "--tenants", "a,a", "--service-root", str(tmp_path)]) != 0
        assert "unique" in capsys.readouterr().err
