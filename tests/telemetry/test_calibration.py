"""Residual model, calibrated predictor, drift schedule, drift detector."""

import math

import pytest

from repro.telemetry import (
    CalibratedPredictor,
    CalibrationSample,
    DriftDetector,
    LatencyDrift,
    ResidualModel,
    TelemetrySession,
    drift_factors_at,
)


def samples(op, factor, n=16, base=100.0, start_iter=0):
    return [
        CalibrationSample(
            op_type=op,
            predicted_us=base,
            observed_us=base * factor,
            iteration=start_iter + i,
        )
        for i in range(n)
    ]


class TestCalibrationSample:
    def test_log_ratio_uses_base_prediction(self):
        s = CalibrationSample("Clamp", predicted_us=100.0, observed_us=250.0)
        assert s.log_ratio == pytest.approx(math.log(2.5))

    def test_drift_error_uses_active_prediction(self):
        # Base says 100, the corrected (active) model says 250, observed 250:
        # residual learning still sees the 2.5x gap, drift detection sees none.
        s = CalibrationSample(
            "Clamp", predicted_us=100.0, observed_us=250.0, active_predicted_us=250.0
        )
        assert s.log_ratio == pytest.approx(math.log(2.5))
        assert s.abs_relative_error == pytest.approx(0.0)

    def test_dict_round_trip(self):
        s = CalibrationSample(
            "Logit", 10.0, 12.0, iteration=4, stage=1, features=(1.0, 2.0),
            active_predicted_us=11.0,
        )
        assert CalibrationSample.from_dict(s.to_dict()) == s


class TestLatencyDrift:
    def test_window_semantics(self):
        d = LatencyDrift("Clamp", 2.0, start_iteration=3, end_iteration=6)
        assert [d.active_at(i) for i in range(2, 7)] == [False, True, True, True, False]

    def test_open_ended(self):
        d = LatencyDrift("Clamp", 2.0, start_iteration=3)
        assert d.active_at(10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyDrift("Clamp", 0.0)
        with pytest.raises(ValueError):
            LatencyDrift("Clamp", 2.0, start_iteration=5, end_iteration=5)

    def test_factors_compose(self):
        schedule = [
            LatencyDrift("Clamp", 2.0),
            LatencyDrift("Clamp", 3.0),
            LatencyDrift("Logit", 4.0, start_iteration=10),
        ]
        assert drift_factors_at(schedule, 0) == {"Clamp": 6.0}
        assert drift_factors_at(schedule, 10) == {"Clamp": 6.0, "Logit": 4.0}

    def test_identity_factors_dropped(self):
        schedule = [LatencyDrift("Clamp", 2.0), LatencyDrift("Clamp", 0.5)]
        assert drift_factors_at(schedule, 0) == {}

    def test_dict_round_trip(self):
        d = LatencyDrift("FillNull", 1.5, start_iteration=2, end_iteration=9)
        assert LatencyDrift.from_dict(d.to_dict()) == d


class TestResidualModel:
    def test_needs_min_samples(self):
        model = ResidualModel(min_samples=8)
        for s in samples("Clamp", 2.0, n=7):
            model.record(s)
        assert model.correction("Clamp") == 1.0
        model.record(samples("Clamp", 2.0, n=1)[0])
        assert model.correction("Clamp") == pytest.approx(2.0)

    def test_constant_factor_recovered_exactly(self):
        model = ResidualModel()
        for s in samples("Clamp", 2.5, n=32):
            model.record(s)
        assert model.correction("Clamp") == pytest.approx(2.5)
        assert model.correct("Clamp", 100.0) == pytest.approx(250.0)

    def test_median_robust_to_outliers(self):
        model = ResidualModel()
        for s in samples("Clamp", 2.0, n=31):
            model.record(s)
        model.record(CalibrationSample("Clamp", 100.0, 100_000.0))
        assert model.correction("Clamp") == pytest.approx(2.0)

    def test_unknown_op_untouched(self):
        model = ResidualModel()
        assert model.correction("Ngram") == 1.0
        assert model.correct("Ngram", 42.0) == 42.0

    def test_correction_clipped(self):
        model = ResidualModel(clip=4.0)
        for s in samples("Clamp", 1000.0, n=16):
            model.record(s)
        assert model.correction("Clamp") == 4.0

    def test_window_forgets_old_regime(self):
        model = ResidualModel(window=16)
        for s in samples("Clamp", 2.0, n=16):
            model.record(s)
        for s in samples("Clamp", 1.0, n=16):
            model.record(s)
        assert model.correction("Clamp") == pytest.approx(1.0)

    def test_mape_improves_with_correction(self):
        model = ResidualModel()
        for s in samples("Clamp", 2.0, n=16):
            model.record(s)
        raw = model.mean_absolute_percentage_error(corrected=False)
        corrected = model.mean_absolute_percentage_error(corrected=True)
        assert raw == pytest.approx(0.5)
        assert corrected == pytest.approx(0.0)

    def test_fingerprint_tracks_corrections(self):
        a, b = ResidualModel(), ResidualModel()
        assert a.fingerprint() == b.fingerprint()
        for s in samples("Clamp", 2.0, n=16):
            a.record(s)
        assert a.fingerprint() != b.fingerprint()

    def test_state_round_trip(self):
        a = ResidualModel(window=32)
        for s in samples("Clamp", 2.0, n=16) + samples("Logit", 0.5, n=16):
            a.record(s)
        b = ResidualModel()
        b.load_state(a.state_dict())
        assert b.corrections() == a.corrections()
        assert b.state_dict() == a.state_dict()

    def test_gbdt_mode_learns_feature_dependent_drift(self):
        # Drift that depends on a feature: small kernels 1.5x, big ones 3x.
        model = ResidualModel(mode="gbdt", min_fit_samples=64)
        recorded = []
        for i in range(128):
            size = float(i % 2)  # 0 = small, 1 = big
            factor = 1.5 if size == 0.0 else 3.0
            recorded.append(
                CalibrationSample(
                    "Ngram", 100.0, 100.0 * factor, features=(size, 1.0)
                )
            )
        for s in recorded:
            model.record(s)
        assert model.correct("Ngram", 100.0, (0.0, 1.0)) == pytest.approx(150.0, rel=0.05)
        assert model.correct("Ngram", 100.0, (1.0, 1.0)) == pytest.approx(300.0, rel=0.05)

    def test_gbdt_mode_falls_back_below_threshold(self):
        model = ResidualModel(mode="gbdt", min_fit_samples=64)
        for s in samples("Clamp", 2.0, n=16):
            model.record(s)
        # Too few samples for the regressor: quantile correction applies.
        assert model.correct("Clamp", 100.0, (1.0,)) == pytest.approx(200.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ResidualModel(mode="nonsense")
        with pytest.raises(ValueError):
            ResidualModel(window=0)
        with pytest.raises(ValueError):
            ResidualModel(clip=1.0)


class FakeKernel:
    def __init__(self, tag, duration_us):
        self.tag = tag
        self.duration_us = duration_us
        self.num_warps = 32
        self.meta = {}


class TestCalibratedPredictor:
    def test_oracle_base_applies_correction(self):
        residual = ResidualModel()
        for s in samples("Clamp", 2.0, n=16):
            residual.record(s)
        predictor = CalibratedPredictor(None, residual)
        assert predictor.is_fitted
        k = FakeKernel("Clamp", 100.0)
        assert predictor.base_prediction(k) == 100.0
        assert predictor.predict_kernel(k) == pytest.approx(200.0)
        assert predictor.predict_total([k, k]) == pytest.approx(400.0)

    def test_fingerprint_changes_with_corrections(self):
        residual = ResidualModel()
        predictor = CalibratedPredictor(None, residual)
        before = predictor.fingerprint()
        for s in samples("Clamp", 2.0, n=16):
            residual.record(s)
        assert predictor.fingerprint() != before
        assert predictor.fingerprint().startswith("calibrated:oracle:")


class TestDriftDetector:
    def test_fires_only_after_sustained_window(self):
        det = DriftDetector(threshold=0.25, window=3)
        events = [
            det.observe_iteration(i, samples("Clamp", 2.0, n=4, start_iter=i))
            for i in range(3)
        ]
        assert events[0] is None and events[1] is None
        assert events[2] is not None
        assert events[2].worst_op_type == "Clamp"
        assert events[2].iteration == 2

    def test_spike_does_not_fire(self):
        det = DriftDetector(threshold=0.25, window=3)
        assert det.observe_iteration(0, samples("Clamp", 2.0, n=4)) is None
        assert det.observe_iteration(1, samples("Clamp", 1.0, n=4)) is None
        assert det.observe_iteration(2, samples("Clamp", 2.0, n=4)) is None

    def test_edge_triggered_until_rearmed(self):
        det = DriftDetector(threshold=0.25, window=2)
        det.observe_iteration(0, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(1, samples("Clamp", 2.0, n=4)) is not None
        # Still drifting: no second event while breached.
        assert det.observe_iteration(2, samples("Clamp", 2.0, n=4)) is None
        # Signal recovers (correction landed), then drifts again: re-fires.
        det.observe_iteration(3, samples("Clamp", 1.0, n=4))
        det.observe_iteration(4, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(5, samples("Clamp", 2.0, n=4)) is not None

    def test_single_drifted_op_not_diluted(self):
        det = DriftDetector(threshold=0.25, window=1)
        mixed = samples("Clamp", 2.0, n=2) + samples("Logit", 1.0, n=20)
        event = det.observe_iteration(0, mixed)
        assert event is not None
        assert event.worst_op_type == "Clamp"

    def test_active_prediction_quiets_detector(self):
        det = DriftDetector(threshold=0.25, window=1)
        corrected = [
            CalibrationSample(
                "Clamp", 100.0, 250.0, iteration=0, active_predicted_us=250.0
            )
            for _ in range(4)
        ]
        assert det.observe_iteration(0, corrected) is None

    def test_reset_rearms_and_clears_history(self):
        det = DriftDetector(threshold=0.25, window=2)
        det.observe_iteration(0, samples("Clamp", 2.0, n=4))
        det.observe_iteration(1, samples("Clamp", 2.0, n=4))
        det.reset()
        assert det.observe_iteration(2, samples("Clamp", 2.0, n=4)) is None

    def test_state_round_trip(self):
        a = DriftDetector(threshold=0.25, window=3)
        a.observe_iteration(0, samples("Clamp", 2.0, n=4))
        b = DriftDetector(threshold=0.25, window=3)
        b.load_state(a.state_dict())
        assert b.state_dict() == a.state_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(window=0)


class TestDriftDetectorRearmEdges:
    """Re-arm boundary behavior: the edge trigger must survive restarts
    and refuse to re-fire until the signal genuinely recovers."""

    def test_signal_exactly_at_threshold_rearms(self):
        # Sustained breach requires strictly > threshold; a signal that
        # lands exactly on the threshold both breaks the window and
        # re-arms the trigger.
        det = DriftDetector(threshold=0.25, window=2)
        det.observe_iteration(0, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(1, samples("Clamp", 2.0, n=4)) is not None
        det.observe_iteration(2, samples("Clamp", 1.25, n=4))  # error == 0.25
        det.observe_iteration(3, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(4, samples("Clamp", 2.0, n=4)) is not None

    def test_empty_iteration_is_a_no_op(self):
        # An iteration with no kernel samples must neither break the
        # sustained window nor count toward it.
        det = DriftDetector(threshold=0.25, window=2)
        det.observe_iteration(0, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(1, []) is None
        assert det.observe_iteration(2, samples("Clamp", 2.0, n=4)) is not None

    def test_rearm_needs_full_window_again(self):
        # After recovery the detector is armed, but one fresh breach is a
        # spike, not sustained drift: the full window must refill first.
        det = DriftDetector(threshold=0.25, window=2)
        det.observe_iteration(0, samples("Clamp", 2.0, n=4))
        assert det.observe_iteration(1, samples("Clamp", 2.0, n=4)) is not None
        det.observe_iteration(2, samples("Clamp", 1.0, n=4))
        assert det.observe_iteration(3, samples("Clamp", 2.0, n=4)) is None
        assert det.observe_iteration(4, samples("Clamp", 2.0, n=4)) is not None

    def test_restored_detector_does_not_refire(self):
        # A checkpoint taken mid-breach (after the edge fired) must not
        # spuriously re-trigger when the restored process keeps seeing
        # the same drifted costs.
        fired = DriftDetector(threshold=0.25, window=2)
        fired.observe_iteration(0, samples("Clamp", 2.0, n=4))
        assert fired.observe_iteration(1, samples("Clamp", 2.0, n=4)) is not None

        restored = DriftDetector(threshold=0.25, window=2)
        restored.load_state(fired.state_dict())
        assert restored.observe_iteration(2, samples("Clamp", 2.0, n=4)) is None
        assert restored.observe_iteration(3, samples("Clamp", 2.0, n=4)) is None
        # ...but a genuine recover-then-drift cycle still fires.
        restored.observe_iteration(4, samples("Clamp", 1.0, n=4))
        restored.observe_iteration(5, samples("Clamp", 2.0, n=4))
        assert restored.observe_iteration(6, samples("Clamp", 2.0, n=4)) is not None

    def test_restored_partial_window_still_counts(self):
        # Breach history accumulated before the kill counts toward the
        # sustained window after restore: restart must not grant the
        # drifted plan a grace period.
        before = DriftDetector(threshold=0.25, window=3)
        before.observe_iteration(0, samples("Clamp", 2.0, n=4))
        before.observe_iteration(1, samples("Clamp", 2.0, n=4))

        after = DriftDetector(threshold=0.25, window=3)
        after.load_state(before.state_dict())
        assert after.observe_iteration(2, samples("Clamp", 2.0, n=4)) is not None


class TestFingerprintRestoreStability:
    """Fingerprints are plan-cache key inputs: a restored session must
    produce bit-identical fingerprints or every resume misses the cache."""

    def test_residual_fingerprint_survives_round_trip(self):
        model = ResidualModel()
        for s in samples("Clamp", 2.0, n=16) + samples("Logit", 1.3, n=16):
            model.record(s)
        restored = ResidualModel()
        restored.load_state(model.state_dict())
        assert restored.fingerprint() == model.fingerprint()

    def test_fingerprint_is_content_addressed(self):
        # Two independently-built models with the same samples agree:
        # the fingerprint hashes corrections, not object identity.
        a, b = ResidualModel(), ResidualModel()
        for s in samples("Clamp", 1.7, n=16):
            a.record(s)
            b.record(s)
        assert a.fingerprint() == b.fingerprint()

    def test_calibrated_fingerprint_survives_session_restore(self):
        session = TelemetrySession()
        for s in samples("Clamp", 2.0, n=16):
            session.record_kernel_sample(s)
        session.check_drift(0)
        before = session.calibrated_predictor(None).fingerprint()

        restored = TelemetrySession()
        restored.load_state(session.state_dict())
        assert restored.calibrated_predictor(None).fingerprint() == before
        assert restored.drift_detector.state_dict() == session.drift_detector.state_dict()

    def test_fingerprint_tracks_new_samples_after_restore(self):
        session = TelemetrySession()
        for s in samples("Clamp", 2.0, n=16):
            session.record_kernel_sample(s)
        restored = TelemetrySession()
        restored.load_state(session.state_dict())
        before = restored.calibrated_predictor(None).fingerprint()
        for s in samples("Clamp", 3.0, n=16, start_iter=16):
            restored.record_kernel_sample(s)
        assert restored.calibrated_predictor(None).fingerprint() != before
