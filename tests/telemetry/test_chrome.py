"""Chrome trace-event construction, validation, and span generation."""

import json

import pytest

from repro.telemetry import (
    ChromeTraceError,
    Tracer,
    duration_event,
    instant_event,
    iteration_span_events,
    process_metadata_events,
    trace_document,
    trace_json,
    validate_chrome_trace,
)


class TestEventConstructors:
    def test_duration_event_shape(self):
        ev = duration_event("mlp_fwd", "training", ts=10.0, dur=5.0, pid=0, tid=0)
        assert ev["ph"] == "X"
        assert ev["ts"] == 10.0 and ev["dur"] == 5.0

    def test_process_metadata_names_threads(self):
        events = process_metadata_events(3, "GPU 3", threads={0: "training", 1: "preprocessing"})
        names = {(e["name"], e["args"].get("name")) for e in events}
        assert ("process_name", "GPU 3") in names
        assert ("thread_name", "training") in names
        assert ("thread_name", "preprocessing") in names

    def test_trace_json_is_valid_document(self):
        events = [duration_event("a", "cat", ts=0.0, dur=1.0, pid=0, tid=0)]
        doc = json.loads(trace_json(events))
        validate_chrome_trace(doc)


class TestValidator:
    def test_accepts_document_string(self):
        events = [instant_event("mark", "cat", ts=1.0, pid=0, tid=0)]
        validate_chrome_trace(trace_json(events))

    def test_rejects_missing_required_field(self):
        doc = trace_document([{"ph": "X", "name": "a", "ts": 0.0, "pid": 0, "tid": 0}])
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace(doc)  # duration event without dur

    def test_rejects_negative_duration(self):
        doc = trace_document(
            [duration_event("a", "cat", ts=0.0, dur=1.0, pid=0, tid=0)]
        )
        doc["traceEvents"][0]["dur"] = -1.0
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace(doc)

    def test_rejects_unknown_phase(self):
        doc = trace_document([{"ph": "Z", "name": "a", "ts": 0.0, "pid": 0, "tid": 0}])
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace(doc)

    def test_rejects_non_list_events(self):
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace({"traceEvents": {}})


@pytest.fixture
def iteration_result(device, mlp_stage, emb_stage, small_kernel):
    return device.simulate_iteration([mlp_stage, emb_stage], {0: [small_kernel]})


class TestIterationSpans:
    def test_spans_cover_stages_and_kernels(self, iteration_result):
        events = iteration_span_events(iteration_result, pid=0)
        validate_chrome_trace(trace_document(events))
        train = [e for e in events if e["tid"] == 0]
        prep = [e for e in events if e["tid"] == 1]
        assert len(train) == len(iteration_result.stage_spans)
        assert len(prep) == len(iteration_result.kernel_spans)

    def test_offset_shifts_timestamps(self, iteration_result):
        base = iteration_span_events(iteration_result, pid=0)
        shifted = iteration_span_events(iteration_result, pid=0, t_offset=1000.0)
        assert [e["ts"] + 1000.0 for e in base] == [e["ts"] for e in shifted]


class TestTracer:
    def test_tracer_output_validates(self):
        tracer = Tracer()
        tracer.ensure_process(0, "GPU 0", threads={0: "training"})
        tracer.span("stage", "training", ts=0.0, dur=10.0, pid=0, tid=0)
        tracer.instant("replan (drift)", "runtime", plan_epoch=1)
        validate_chrome_trace(tracer.to_chrome_trace())

    def test_clock_state_round_trips(self):
        a = Tracer()
        a.span("s", "c", ts=0.0, dur=5.0, pid=0, tid=0)
        state = a.state_dict()
        b = Tracer()
        b.load_state(state)
        assert b.state_dict() == state
