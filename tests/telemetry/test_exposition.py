"""Prometheus text exposition, strict parsing, and the JSONL sink."""

import pytest

from repro.telemetry import (
    JsonlMetricsSink,
    MetricsRegistry,
    PrometheusParseError,
    parse_prometheus_text,
    to_prometheus_text,
    write_prometheus,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("rap_iterations_total", help="Iterations executed").inc(12)
    reg.gauge("rap_plan_epoch", help="Current plan epoch").set(2)
    reg.counter(
        "rap_cache_hit_total", help="Cache hits", labels={"cache": "plan", "tier": "disk"}
    ).inc(3)
    h = reg.histogram(
        "rap_iteration_latency_us", help="Latency", buckets=(100.0, 1000.0)
    )
    h.observe(50.0)
    h.observe(500.0)
    h.observe(5000.0)
    return reg


class TestExposition:
    def test_round_trip(self):
        text = to_prometheus_text(populated_registry())
        parsed = parse_prometheus_text(text)
        assert parsed["rap_iterations_total"]["type"] == "counter"
        assert parsed["rap_plan_epoch"]["type"] == "gauge"
        hist = parsed["rap_iteration_latency_us"]
        assert hist["type"] == "histogram"
        samples = {
            (labels.get("__role__"), labels.get("le")): value
            for labels, value in hist["samples"]
        }
        assert samples[("count", None)] == 3.0
        assert samples[("sum", None)] == 5550.0
        assert samples[("bucket", "+Inf")] == 3.0

    def test_labels_survive_round_trip(self):
        text = to_prometheus_text(populated_registry())
        parsed = parse_prometheus_text(text)
        labels, value = parsed["rap_cache_hit_total"]["samples"][0]
        assert labels == {"cache": "plan", "tier": "disk"}
        assert value == 3.0

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"path": 'a"b\\c\nd'}).inc()
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        labels, _ = parsed["c_total"]["samples"][0]
        assert labels == {"path": 'a"b\\c\nd'}

    def test_write_prometheus_atomic(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(path, populated_registry())
        parsed = parse_prometheus_text(path.read_text())
        assert "rap_iterations_total" in parsed
        assert not list(tmp_path.glob("*.tmp*"))


class TestStrictParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text("orphan_metric 1\n")

    def test_rejects_bad_value(self):
        text = "# TYPE m counter\nm not_a_number\n"
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="100"} 1\n'
            "h_sum 50\n"
            "h_count 1\n"
        )
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(text)

    def test_rejects_decreasing_cumulative_counts(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="100"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 50\n"
            "h_count 3\n"
        )
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(text)

    def test_rejects_count_bucket_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 50\n"
            "h_count 4\n"
        )
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(text)

    def test_rejects_histogram_missing_sum(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 3\n' "h_count 3\n"
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(text)

    def test_error_carries_line_number(self):
        try:
            parse_prometheus_text("# TYPE m counter\nm oops\n")
        except PrometheusParseError as exc:
            assert exc.line_number == 2
        else:
            pytest.fail("expected PrometheusParseError")


class TestJsonlSink:
    def test_flush_appends_steps(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = JsonlMetricsSink(path)
        reg = MetricsRegistry()
        counter = reg.counter("c_total")
        counter.inc()
        sink.flush(reg, step=1)
        counter.inc()
        sink.flush(reg, step=2)
        records = JsonlMetricsSink.read(path)
        assert [r["step"] for r in records] == [1, 2]
        assert records[-1]["metrics"]["c_total"]["series"][0]["value"] == 2.0
