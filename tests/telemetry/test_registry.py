"""Unit tests for the process-local metrics registry."""

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge("queue_depth")
        g.set(7.0)
        g.inc()
        g.dec(3.0)
        assert g.value == 5.0

    def test_histogram_buckets_and_sum(self):
        h = Histogram("lat_us", buckets=(10.0, 100.0, 1000.0))
        for v in (5.0, 50.0, 500.0, 5000.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 5555.0
        cumulative = h.cumulative_counts()
        # Implicit +Inf bucket terminates the list and equals the count.
        assert cumulative[-1][0] == float("inf")
        assert [c for _, c in cumulative] == [1, 2, 3, 4]

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100.0, 10.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, float("inf")))

    def test_default_buckets_strictly_increase(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            set(DEFAULT_LATENCY_BUCKETS_US)
        )


class TestMetricKey:
    def test_labels_are_order_insensitive(self):
        assert metric_key("m", {"a": "1", "b": "2"}) == metric_key(
            "m", {"b": "2", "a": "1"}
        )

    def test_distinct_labels_distinct_keys(self):
        assert metric_key("m", {"a": "1"}) != metric_key("m", {"a": "2"})


class TestMetricsRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", labels={"cache": "plan"})
        b = reg.counter("hits_total", labels={"cache": "plan"})
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_children_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels={"cache": "plan"}).inc(3)
        reg.counter("hits_total", labels={"cache": "milp"}).inc(1)
        snap = reg.snapshot()
        values = {
            tuple(sorted(series["labels"].items())): series["value"]
            for series in snap["hits_total"]["series"]
        }
        assert values[(("cache", "plan"),)] == 3.0
        assert values[(("cache", "milp"),)] == 1.0

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m_total")
        with pytest.raises(ValueError):
            reg.gauge("m_total")

    def test_histogram_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h_us", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h_us", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labels={"bad label": "x"})

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz_total")
        reg.gauge("aaa")
        names = [name for name, _, _, _ in reg.families()]
        assert names == sorted(names)

    def test_snapshot_is_json_plain(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.histogram("h_us", buckets=(1.0,)).observe(0.5)
        json.dumps(reg.snapshot())  # must not raise
