"""TelemetrySession: aggregation, artifacts, and checkpoint state."""

import json

import pytest

from repro.telemetry import (
    CalibratedPredictor,
    CalibrationSample,
    JsonlMetricsSink,
    TelemetrySession,
    parse_prometheus_text,
    validate_chrome_trace,
)


def feed(session, op="Clamp", factor=2.0, n=16, iteration=0):
    for i in range(n):
        session.record_kernel_sample(
            CalibrationSample(op, 100.0, 100.0 * factor, iteration=iteration, stage=i)
        )


class TestSessionRecording:
    def test_kernel_samples_feed_residual_and_metrics(self):
        session = TelemetrySession()
        feed(session, n=16)
        assert session.residual.total_samples == 16
        text = session.prometheus_text()
        parsed = parse_prometheus_text(text)
        assert "rap_calibration_samples_total" in parsed
        assert "rap_kernel_observed_us" in parsed
        corr = {
            labels["op"]: value
            for labels, value in parsed["rap_calibration_correction"]["samples"]
        }
        assert corr["Clamp"] == pytest.approx(2.0)

    def test_record_iteration_counts_and_traces(self):
        session = TelemetrySession()
        session.record_iteration(0, 1500.0, 120.0)
        session.record_iteration(1, 1600.0, 90.0)
        parsed = parse_prometheus_text(session.prometheus_text())
        _, total = parsed["rap_iterations_total"]["samples"][0]
        assert total == 2.0
        names = {e["name"] for e in session.tracer.events}
        assert "iteration 0" in names and "iteration 1" in names

    def test_check_drift_fires_and_counts(self):
        session = TelemetrySession()
        for i in range(3):
            feed(session, n=4, iteration=i)
            event = session.check_drift(i)
        assert event is not None
        assert session.drift_events == [event]
        parsed = parse_prometheus_text(session.prometheus_text())
        _, fired = parsed["rap_drift_events_total"]["samples"][0]
        assert fired == 1.0

    def test_check_drift_consumes_iteration_samples(self):
        session = TelemetrySession()
        feed(session, n=4)
        session.check_drift(0)
        # Second check sees no fresh samples: detector history untouched.
        assert session.check_drift(1) is None
        assert session.drift_detector.state_dict()["history"] == [1.0]

    def test_note_replan(self):
        session = TelemetrySession()
        session.note_replan(5, "drift", plan_epoch=2)
        parsed = parse_prometheus_text(session.prometheus_text())
        labels, count = parsed["rap_replans_total"]["samples"][0]
        assert labels == {"reason": "drift"} and count == 1.0
        _, epoch = parsed["rap_plan_epoch"]["samples"][0]
        assert epoch == 2.0

    def test_mape_properties(self):
        session = TelemetrySession()
        feed(session, factor=2.0, n=16)
        assert session.predictor_mape == pytest.approx(0.5)
        assert session.calibrated_mape == pytest.approx(0.0)


class TestCalibratedPredictorHandle:
    def test_wraps_base_once(self):
        session = TelemetrySession()
        wrapped = session.calibrated_predictor(None)
        assert isinstance(wrapped, CalibratedPredictor)
        rewrapped = session.calibrated_predictor(wrapped)
        assert rewrapped.base is None  # never stacks corrections
        assert rewrapped.residual is session.residual


class TestArtifacts:
    def test_write_artifacts_produces_valid_files(self, tmp_path):
        session = TelemetrySession(metrics_dir=tmp_path)
        feed(session, n=8)
        session.record_iteration(0, 1500.0, 120.0)
        paths = session.write_artifacts(step=0)
        parsed = parse_prometheus_text(paths["prometheus"].read_text())
        assert "rap_iteration_latency_us" in parsed
        validate_chrome_trace(json.loads(paths["trace"].read_text()))
        assert JsonlMetricsSink.read(paths["jsonl"])

    def test_no_metrics_dir_no_artifacts(self):
        session = TelemetrySession()
        assert session.write_artifacts() == {}
        session.flush()  # must not raise

    def test_summary_mentions_corrections(self):
        session = TelemetrySession()
        feed(session, factor=2.5, n=16)
        text = "\n".join(session.summary_lines())
        assert "Clamp=2.500" in text
        assert "calibration samples: 16" in text


class TestSessionState:
    def test_state_round_trip(self):
        a = TelemetrySession()
        for i in range(3):
            feed(a, n=4, iteration=i)
            a.check_drift(i)
        a.record_iteration(0, 1500.0, 100.0)
        b = TelemetrySession()
        b.load_state(a.state_dict())
        assert b.state_dict() == a.state_dict()
        assert b.residual.corrections() == a.residual.corrections()
        assert len(b.drift_events) == len(a.drift_events)
