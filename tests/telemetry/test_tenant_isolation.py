"""Per-tenant telemetry isolation (service satellite).

Every tenant owns a :class:`TelemetrySession` constructed with its
``tenant`` label; its registry, artifacts, and exported text must be
fully disjoint from every other tenant's, and every exported sample must
carry the owning tenant's label.
"""

import pytest

from repro.telemetry.exposition import parse_prometheus_text
from repro.telemetry.session import TelemetrySession


@pytest.fixture()
def sessions(tmp_path):
    a = TelemetrySession(metrics_dir=tmp_path / "a", tenant="a")
    b = TelemetrySession(metrics_dir=tmp_path / "b", tenant="b")
    a.record_iteration(0, iteration_us=100.0, exposed_us=5.0)
    a.record_iteration(1, iteration_us=110.0, exposed_us=6.0)
    b.record_iteration(0, iteration_us=900.0, exposed_us=50.0)
    return a, b


class TestTenantIsolation:
    def test_registries_are_disjoint_objects(self, sessions):
        a, b = sessions
        assert a.registry is not b.registry
        assert a.registry.snapshot()["rap_iterations_total"]["series"][0]["value"] == 2
        assert b.registry.snapshot()["rap_iterations_total"]["series"][0]["value"] == 1

    def test_every_sample_carries_its_tenant_label(self, sessions):
        for session, tenant in zip(sessions, ("a", "b")):
            snapshot = session.registry.snapshot()
            assert snapshot  # at least the shared instruments exist
            for family in snapshot.values():
                for series in family["series"]:
                    assert series["labels"].get("tenant") == tenant

    def test_recording_into_one_never_moves_the_other(self, sessions):
        a, b = sessions
        before = b.registry.snapshot()
        a.record_iteration(2, iteration_us=120.0, exposed_us=7.0)
        assert b.registry.snapshot() == before

    def test_exported_text_round_trips_strictly(self, sessions):
        for session, tenant in zip(sessions, ("a", "b")):
            families = parse_prometheus_text(session.prometheus_text())
            assert "rap_iteration_latency_us" in families
            for family in families.values():
                for labels, _ in family["samples"]:
                    assert labels.get("tenant") == tenant

    def test_artifacts_land_in_disjoint_directories(self, sessions):
        a, b = sessions
        paths_a = a.write_artifacts(step=2)
        paths_b = b.write_artifacts(step=1)
        assert paths_a["prometheus"] != paths_b["prometheus"]
        text_a = paths_a["prometheus"].read_text()
        text_b = paths_b["prometheus"].read_text()
        assert 'tenant="a"' in text_a and 'tenant="b"' not in text_a
        assert 'tenant="b"' in text_b and 'tenant="a"' not in text_b
        # Both exported files are strictly parseable on their own.
        parse_prometheus_text(text_a)
        parse_prometheus_text(text_b)
