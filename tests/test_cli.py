"""Tests for the ``rap-repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.plan == 1 and args.gpus == 4 and args.batch == 4096

    def test_invalid_plan_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--plan", "9"])

    def test_mapping_choices(self):
        args = build_parser().parse_args(["plan", "--mapping", "data_parallel"])
        assert args.mapping == "data_parallel"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--mapping", "bogus"])


class TestPlanCommand:
    def test_plan_prints_summary(self, capsys):
        assert main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        assert "RAP plan" in out
        assert "training slowdown" in out

    def test_plan_gantt(self, capsys):
        main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024", "--gantt"])
        out = capsys.readouterr().out
        assert "emb_lookup_fwd" in out
        assert "=" in out

    def test_plan_emits_artifacts(self, tmp_path, capsys):
        code = tmp_path / "plan.py"
        trace = tmp_path / "trace.json"
        main([
            "plan", "--plan", "0", "--gpus", "2", "--batch", "1024",
            "--emit-code", str(code), "--emit-trace", str(trace),
        ])
        assert "SCHEDULE" in code.read_text()
        data = json.loads(trace.read_text())
        assert "traceEvents" in data

    def test_plan_no_fusion(self, capsys):
        main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024", "--no-fusion"])
        out = capsys.readouterr().out
        assert "fusion                 : off" in out


class TestCompareCommand:
    def test_compare_lists_all_systems(self, capsys):
        assert main(["compare", "--plan", "0", "--gpus", "2", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        for system in ("TorchArrow", "Sequential GPU", "CUDA stream", "MPS", "RAP", "Ideal"):
            assert system in out


class TestPredictorCommand:
    def test_predictor_small_run(self, capsys):
        assert main(["predictor", "--samples", "600"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out


class TestRunCommand:
    def test_clean_run_prints_report(self, capsys):
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--iterations", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fault-tolerant run" in out
        assert "iterations: 3 (0 degraded)" in out
        assert "replans: 0" in out

    def test_injection_degrades_and_reports(self, capsys):
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--iterations", "10", "--seed", "3",
                     "--inject", "kernel_failure=0.9"]) == 0
        out = capsys.readouterr().out
        assert "kernel_failure@0.9" in out
        assert "kernel_failure" in out

    def test_seed_makes_runs_reproducible(self, capsys):
        argv = ["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                "--iterations", "8", "--seed", "17", "--inject", "kernel_failure=0.7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_save_and_load_report(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--iterations", "4", "--inject", "kernel_failure=0.5",
                     "--save-report", str(artifact)]) == 0
        capsys.readouterr()
        data = json.loads(artifact.read_text())
        assert "resilience" in data
        assert len(data["resilience"]["iterations"]) == 4
        # The artifact doubles as a loadable plan.
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--iterations", "2", "--load-plan", str(artifact)]) == 0

    def test_inject_full_spec_parses(self):
        from repro.cli import _parse_inject

        spec = _parse_inject("latency_overrun=0.3:4.0:0.5")
        assert spec.kind == "latency_overrun"
        assert spec.rate == 0.3
        assert spec.magnitude == 4.0
        assert spec.persistence == 0.5


class TestErrorHandling:
    def test_unknown_fault_kind_is_one_line_error(self, capsys):
        code = main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--inject", "gremlins=0.5"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("rap-repro: error:")
        assert "gremlins" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_inject_spec_rejected(self, capsys):
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--inject", "kernel_failure"]) == 2
        assert "rap-repro: error:" in capsys.readouterr().err

    def test_missing_plan_file_is_one_line_error(self, capsys, tmp_path):
        missing = tmp_path / "ghost.json"
        code = main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--load-plan", str(missing)])
        captured = capsys.readouterr()
        assert code == 2
        assert str(missing) in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_plan_file_is_one_line_error(self, capsys, tmp_path):
        artifact = tmp_path / "plan.json"
        assert main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--save-json", str(artifact)]) == 0
        artifact.write_text(artifact.read_text()[:120])
        capsys.readouterr()
        code = main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--load-plan", str(artifact)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not valid JSON" in captured.err

    def test_invalid_args_exit_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--plan", "9"])
        assert exc.value.code != 0


class TestClobberProtection:
    """Existing artifacts are never silently overwritten without --force."""

    BASE = ["--plan", "0", "--gpus", "2", "--batch", "1024"]

    def test_save_json_refuses_existing_file(self, capsys, tmp_path):
        artifact = tmp_path / "plan.json"
        artifact.write_text("precious")
        code = main(["plan", *self.BASE, "--save-json", str(artifact)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("rap-repro: error:")
        assert "--force" in captured.err
        assert "Traceback" not in captured.err
        assert artifact.read_text() == "precious"

    def test_save_json_force_overwrites(self, capsys, tmp_path):
        artifact = tmp_path / "plan.json"
        artifact.write_text("precious")
        assert main(["plan", *self.BASE, "--save-json", str(artifact), "--force"]) == 0
        assert json.loads(artifact.read_text())["format_version"] >= 1

    def test_save_report_refuses_existing_file(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        artifact.write_text("precious")
        code = main(["run", *self.BASE, "--iterations", "2",
                     "--save-report", str(artifact)])
        captured = capsys.readouterr()
        assert code == 2
        assert "--force" in captured.err
        assert artifact.read_text() == "precious"
        # The refusal happens before planning: no partial output either.
        assert "Fault-tolerant run" not in captured.out

    def test_save_report_force_overwrites(self, capsys, tmp_path):
        artifact = tmp_path / "report.json"
        artifact.write_text("precious")
        assert main(["run", *self.BASE, "--iterations", "2",
                     "--save-report", str(artifact), "--force"]) == 0
        assert "resilience" in json.loads(artifact.read_text())

    def test_fresh_file_needs_no_force(self, capsys, tmp_path):
        artifact = tmp_path / "plan.json"
        assert main(["plan", *self.BASE, "--save-json", str(artifact)]) == 0
        assert artifact.exists()


class TestPlanCacheFlag:
    BASE = ["--plan", "0", "--gpus", "2", "--batch", "1024"]

    def test_warm_cache_reports_hit_and_identical_plan(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert main(["plan", *self.BASE, "--plan-cache", str(cache),
                     "--save-json", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        assert "plan cache" in cold_out and "1 miss(es)" in cold_out
        # A second invocation (fresh process state modeled by a fresh main
        # call) hits the disk tier and emits a bit-identical artifact.
        assert main(["plan", *self.BASE, "--plan-cache", str(cache),
                     "--save-json", str(warm_json)]) == 0
        warm_out = capsys.readouterr().out
        assert "1 hit(s)" in warm_out
        assert warm_json.read_text() == cold_json.read_text()

    def test_no_parallel_search_same_plan(self, capsys, tmp_path):
        seq_json = tmp_path / "seq.json"
        par_json = tmp_path / "par.json"
        assert main(["plan", *self.BASE, "--no-parallel-search",
                     "--save-json", str(seq_json)]) == 0
        assert main(["plan", *self.BASE, "--save-json", str(par_json)]) == 0
        assert seq_json.read_text() == par_json.read_text()

    def test_no_cache_no_stats_block(self, capsys):
        assert main(["plan", *self.BASE]) == 0
        assert "Planner fast path" not in capsys.readouterr().out


class TestSeedThreading:
    def test_random_plan_seed_changes_workload(self, capsys):
        assert main(["plan", "--random-plan", "--seed", "1",
                     "--gpus", "2", "--batch", "1024"]) == 0
        first = capsys.readouterr().out
        assert main(["plan", "--random-plan", "--seed", "2",
                     "--gpus", "2", "--batch", "1024"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_random_plan_same_seed_is_deterministic(self, capsys):
        argv = ["plan", "--random-plan", "--seed", "5", "--gpus", "2", "--batch", "1024"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestCheckpointResume:
    BASE = ["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
            "--seed", "11", "--inject", "kernel_failure=0.5", "--inject", "plan_drift=0.2:1.2"]

    def test_kill_then_resume_matches_straight_run(self, tmp_path, capsys):
        straight = tmp_path / "straight.json"
        assert main([*self.BASE, "--iterations", "12", "--save-report", str(straight)]) == 0
        capsys.readouterr()

        ckpt = tmp_path / "ckpt"
        resumed = tmp_path / "resumed.json"
        code = main([*self.BASE, "--iterations", "12",
                     "--checkpoint-dir", str(ckpt), "--checkpoint-every", "4",
                     "--kill-after-iter", "8"])
        captured = capsys.readouterr()
        assert code == 3
        assert "killed after iteration 7" in captured.err
        assert "--resume" in captured.err

        assert main([*self.BASE, "--iterations", "12",
                     "--checkpoint-dir", str(ckpt), "--checkpoint-every", "4",
                     "--resume", "--save-report", str(resumed)]) == 0
        out = capsys.readouterr().out
        assert "resumed at iteration" in out

        # The artifact embeds both the final plan and the resilience
        # report; the resumed run reproduces the straight run exactly.
        straight_data = json.loads(straight.read_text())
        resumed_data = json.loads(resumed.read_text())
        assert resumed_data["resilience"] == straight_data["resilience"]
        assert resumed_data == straight_data

    def test_journal_written_alongside_checkpoints(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main([*self.BASE, "--iterations", "6",
                     "--checkpoint-dir", str(ckpt), "--checkpoint-every", "3"]) == 0
        capsys.readouterr()
        journal = ckpt / "journal.jsonl"
        assert journal.exists()
        types = [json.loads(line)["type"] for line in journal.read_text().splitlines()]
        assert types[0] == "run"
        assert "checkpoint" in types
        assert sorted(d.name for d in ckpt.glob("ckpt-*"))  # sealed checkpoint dirs

    def test_resume_without_checkpoint_dir_is_an_error(self, capsys):
        assert main([*self.BASE, "--iterations", "4", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "rap-repro: error:" in err and "--checkpoint-dir" in err

    def test_resume_with_no_valid_checkpoint_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "ckpt"
        assert main([*self.BASE, "--iterations", "4",
                     "--checkpoint-dir", str(empty), "--resume"]) == 2
        assert "no valid checkpoint" in capsys.readouterr().err

    def test_resume_refuses_mismatched_seed(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main([*self.BASE, "--iterations", "12",
                     "--checkpoint-dir", str(ckpt), "--checkpoint-every", "4",
                     "--kill-after-iter", "8"])
        assert code == 3
        capsys.readouterr()
        mismatched = [a if a != "11" else "99" for a in self.BASE]
        assert main([*mismatched, "--iterations", "12",
                     "--checkpoint-dir", str(ckpt), "--resume"]) == 2
        assert "seed" in capsys.readouterr().err

    def test_resume_past_the_end_is_an_error(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main([*self.BASE, "--iterations", "8",
                     "--checkpoint-dir", str(ckpt), "--checkpoint-every", "4"]) == 0
        capsys.readouterr()
        assert main([*self.BASE, "--iterations", "4",
                     "--checkpoint-dir", str(ckpt), "--resume"]) == 2
        assert "already at iteration" in capsys.readouterr().err


class TestTelemetryFlags:
    BASE = ["run", "--plan", "1", "--gpus", "2", "--batch", "1024"]

    def test_drift_spec_parses(self):
        from repro.cli import _parse_drift

        d = _parse_drift("Clamp=2.5:3:8")
        assert (d.op_type, d.factor, d.start_iteration, d.end_iteration) == (
            "Clamp", 2.5, 3, 8,
        )
        assert _parse_drift("Logit=1.5").start_iteration == 0
        assert _parse_drift("FillNull=2:4").end_iteration is None

    def test_drift_spec_rejects_unknown_op(self, capsys):
        assert main([*self.BASE, "--iterations", "2", "--drift", "NotAnOp=2.0"]) == 2
        assert "unknown op" in capsys.readouterr().err

    def test_drift_spec_rejects_malformed(self, capsys):
        assert main([*self.BASE, "--iterations", "2", "--drift", "Clamp"]) == 2
        assert "drift spec" in capsys.readouterr().err

    def test_metrics_dir_conflicts_with_no_telemetry(self, capsys):
        assert main([*self.BASE, "--iterations", "2", "--no-telemetry",
                     "--metrics-dir", "x"]) == 2
        assert "--no-telemetry" in capsys.readouterr().err

    def test_run_emits_metrics_artifacts(self, tmp_path, capsys):
        import json

        from repro.telemetry import parse_prometheus_text, validate_chrome_trace

        metrics = tmp_path / "metrics"
        assert main([*self.BASE, "--iterations", "4",
                     "--metrics-dir", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry" in out
        assert "iterations" in out
        parsed = parse_prometheus_text((metrics / "metrics.prom").read_text())
        assert "rap_iterations_total" in parsed
        validate_chrome_trace(json.loads((metrics / "trace.json").read_text()))
        assert (metrics / "metrics.jsonl").exists()

    def test_drift_run_reports_calibration(self, capsys):
        assert main([*self.BASE, "--iterations", "10",
                     "--drift", "Clamp=2.5:2"]) == 0
        out = capsys.readouterr().out
        assert "drift events" in out
        assert "Clamp=2.500" in out
        assert "replans: 1" in out

    def test_no_telemetry_output_identical_to_default(self, capsys):
        """--no-telemetry must not change the simulated run, only reporting."""
        argv = [*self.BASE, "--iterations", "4", "--seed", "5"]
        assert main(argv) == 0
        with_t = capsys.readouterr().out
        assert main([*argv, "--no-telemetry"]) == 0
        without_t = capsys.readouterr().out
        assert "Telemetry" in with_t and "Telemetry" not in without_t
        # The report block above the telemetry section is byte-identical.
        assert without_t.split("Telemetry")[0].rstrip() in with_t

    def test_cache_stats_show_disk_tier(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        base = ["plan", "--plan", "0", "--gpus", "2", "--batch", "1024",
                "--plan-cache", str(cache)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "1 hit(s) (1 disk-tier)" in out


class TestIngestCli:
    BASE = ["run", "--plan", "0", "--gpus", "2", "--batch", "128",
            "--iterations", "4"]

    def _csv(self, tmp_path):
        from repro.ingest import source, write_csv

        src = source("synthetic://kaggle?batch=128&batches=2&seed=11")
        path = tmp_path / "day0.csv"
        write_csv(str(path), [src.batch(i) for i in range(2)])
        return path

    def test_run_with_synthetic_source_prints_ingest_summary(self, capsys):
        assert main([*self.BASE, "--source",
                     "synthetic://kaggle?batch=128&batches=3"]) == 0
        out = capsys.readouterr().out
        assert "Streaming ingest" in out
        assert "batches ingested : 4" in out
        assert "source epochs" in out

    def test_run_with_csv_source_wraps_epochs_and_verifies(self, tmp_path, capsys):
        # 4 iterations over a 2-batch file: the feeder must re-iterate
        # (the old single-use bug) and the verifier sees real CSV batches.
        path = self._csv(tmp_path)
        assert main([*self.BASE, "--source", f"csv://{path}?batch=128",
                     "--verify-data", "2"]) == 0
        out = capsys.readouterr().out
        assert "Streaming ingest" in out
        assert "source epochs    : 2" in out
        assert "verification" in out

    def test_backpressure_metrics_exported(self, tmp_path, capsys):
        from repro.telemetry import parse_prometheus_text

        metrics = tmp_path / "metrics"
        assert main([*self.BASE, "--source",
                     "synthetic://kaggle?batch=128&batches=4",
                     "--overload-policy", "drop_oldest",
                     "--queue-capacity", "2",
                     "--metrics-dir", str(metrics)]) == 0
        parsed = parse_prometheus_text((metrics / "metrics.prom").read_text())
        for family in ("rap_ingest_batches_total", "rap_ingest_queue_depth",
                       "rap_ingest_queue_wait_seconds",
                       "rap_ingest_producer_stall_ratio"):
            assert family in parsed, family

    @pytest.mark.parametrize("flag,value", [
        ("--overload-policy", "block"),
        ("--queue-capacity", "4"),
        ("--ingest-workers", "2"),
        ("--ingest-depth", "3"),
    ])
    def test_ingest_flags_require_source(self, capsys, flag, value):
        assert main([*self.BASE, flag, value]) == 2
        assert f"{flag} requires --source" in capsys.readouterr().err

    def test_source_batch_must_match_run_batch_when_verifying(self, capsys):
        assert main([*self.BASE, "--source", "synthetic://kaggle?batch=64&batches=3",
                     "--verify-data", "1"]) == 2
        err = capsys.readouterr().err
        assert "64" in err and "128" in err

    def test_bad_source_spec_is_one_line_error(self, capsys):
        assert main([*self.BASE, "--source", "carrier-pigeon://x"]) == 2
        assert "unknown source scheme" in capsys.readouterr().err


class TestShadowCli:
    BASE = ["run", "--plan", "2", "--gpus", "4", "--batch", "2048",
            "--iterations", "14",
            "--drift", "SigridHash=20:2", "--drift", "MapId=20:6"]

    def test_shadow_flags_require_shadow(self, capsys):
        assert main(["run", "--plan", "0", "--gpus", "2", "--batch", "1024",
                     "--iterations", "2", "--promote-margin", "0.2"]) == 2
        assert "--promote-margin requires --shadow" in capsys.readouterr().err

    def test_shadow_cycle_summary_and_journal(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main([*self.BASE, "--shadow", "--checkpoint-dir", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "Shadow promotion" in out
        assert "candidates evaluated" in out

        assert main(["journal", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "shadow_eval" in out
        assert "epoch 0 -> 1" in out
        assert "rolled_back" in out
        assert "journal OK" in out

    def test_journal_subcommand_exit_codes(self, tmp_path, capsys):
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"type": "run"}\n{"type": "replan", "plan_ep')
        assert main(["journal", str(torn)]) == 0
        out = capsys.readouterr().out
        assert "torn tail at line 2" in out

        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text('{"type": "run"}\ngarbage\n{"type": "checkpoint"}\n')
        assert main(["journal", str(corrupt)]) == 2
        assert "corrupt record at line 2" in capsys.readouterr().err

    def test_journal_missing_path_is_an_error(self, tmp_path, capsys):
        assert main(["journal", str(tmp_path / "nope")]) == 2
        assert "no journal at" in capsys.readouterr().err
