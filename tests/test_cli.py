"""Tests for the ``rap-repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.plan == 1 and args.gpus == 4 and args.batch == 4096

    def test_invalid_plan_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--plan", "9"])

    def test_mapping_choices(self):
        args = build_parser().parse_args(["plan", "--mapping", "data_parallel"])
        assert args.mapping == "data_parallel"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--mapping", "bogus"])


class TestPlanCommand:
    def test_plan_prints_summary(self, capsys):
        assert main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        assert "RAP plan" in out
        assert "training slowdown" in out

    def test_plan_gantt(self, capsys):
        main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024", "--gantt"])
        out = capsys.readouterr().out
        assert "emb_lookup_fwd" in out
        assert "=" in out

    def test_plan_emits_artifacts(self, tmp_path, capsys):
        code = tmp_path / "plan.py"
        trace = tmp_path / "trace.json"
        main([
            "plan", "--plan", "0", "--gpus", "2", "--batch", "1024",
            "--emit-code", str(code), "--emit-trace", str(trace),
        ])
        assert "SCHEDULE" in code.read_text()
        data = json.loads(trace.read_text())
        assert "traceEvents" in data

    def test_plan_no_fusion(self, capsys):
        main(["plan", "--plan", "0", "--gpus", "2", "--batch", "1024", "--no-fusion"])
        out = capsys.readouterr().out
        assert "fusion                 : off" in out


class TestCompareCommand:
    def test_compare_lists_all_systems(self, capsys):
        assert main(["compare", "--plan", "0", "--gpus", "2", "--batch", "1024"]) == 0
        out = capsys.readouterr().out
        for system in ("TorchArrow", "Sequential GPU", "CUDA stream", "MPS", "RAP", "Ideal"):
            assert system in out


class TestPredictorCommand:
    def test_predictor_small_run(self, capsys):
        assert main(["predictor", "--samples", "600"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
