"""End-to-end integration tests across the whole system.

These exercise the complete pipeline the way the paper's evaluation does:
build a Table-3 plan, derive the matching DLRM, search a RAP co-running
plan, simulate it, and check the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro import (
    RapPlanner,
    SyntheticCriteoDataset,
    TrainingWorkload,
    build_plan,
    build_skewed_plan,
    execute_graph_set,
    generate_plan_module,
    model_for_plan,
    run_mps_baseline,
    run_sequential_baseline,
)
from repro.core import load_plan_module, train_default_predictor


@pytest.fixture(scope="module")
def predictor():
    pred, _ = train_default_predictor(num_samples=1200, seed=5)
    return pred


@pytest.mark.parametrize("plan_id", [0, 1])
def test_light_plans_fully_overlapped(plan_id):
    """Plans 0/1 vanish into leftover capacity on any GPU count."""
    graphs, schema = build_plan(plan_id, rows=2048)
    for num_gpus in (2, 4):
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=num_gpus, local_batch=2048)
        report = RapPlanner(workload).plan_and_evaluate(graphs)
        assert report.training_slowdown < 1.05


def test_rap_scales_nearly_linearly():
    graphs, schema = build_plan(1, rows=2048)
    tputs = []
    for n in (2, 4, 8):
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=n, local_batch=2048)
        tputs.append(RapPlanner(workload).plan_and_evaluate(graphs).throughput)
    assert tputs[1] > 1.7 * tputs[0]
    assert tputs[2] > 3.0 * tputs[0]


def test_headline_speedups_on_plan2():
    graphs, schema = build_plan(2, rows=4096)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)
    rap = RapPlanner(workload).plan_and_evaluate(graphs)
    seq = run_sequential_baseline(graphs, workload)
    mps = run_mps_baseline(graphs, workload)
    assert rap.throughput / seq.throughput > 1.5
    assert rap.throughput / mps.throughput > 1.2
    assert rap.throughput >= 0.95 * workload.ideal_throughput()


def test_predictor_driven_plan_matches_oracle_plan():
    """Planning with the ML predictor lands close to oracle-cost planning."""
    graphs, schema = build_plan(1, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=2048)
    pred, _ = train_default_predictor(num_samples=1200, seed=5)
    oracle = RapPlanner(workload).plan_and_evaluate(graphs)
    learned = RapPlanner(workload, predictor=pred).plan_and_evaluate(graphs)
    assert learned.iteration_us == pytest.approx(oracle.iteration_us, rel=0.10)


def test_fig10_breakdown_ordering():
    """Sequential < MPS < RAP ablations < full RAP <= Ideal."""
    graphs, schema = build_plan(2, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=2048)
    seq = run_sequential_baseline(graphs, workload).throughput
    mps = run_mps_baseline(graphs, workload).throughput
    no_fusion = RapPlanner(workload, fusion_enabled=False).plan_and_evaluate(graphs).throughput
    no_mapping = RapPlanner(workload, mapping_strategy="data_parallel").plan_and_evaluate(graphs).throughput
    full = RapPlanner(workload).plan_and_evaluate(graphs).throughput
    ideal = workload.ideal_throughput()
    assert seq < mps < full
    assert no_fusion <= full + 1e-6
    assert no_mapping <= full + 1e-6
    assert full <= ideal * 1.001


def test_skewed_mapping_study():
    """Fig. 12: RAP's mapping beats both DP and DL on the skewed plan."""
    graphs, schema = build_skewed_plan(rows=2048, num_gpus=4)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=2048)
    rap = RapPlanner(workload).plan_and_evaluate(graphs)
    dp = RapPlanner(workload, mapping_strategy="data_parallel").plan_and_evaluate(graphs)
    dl = RapPlanner(workload, mapping_strategy="data_locality").plan_and_evaluate(graphs)
    # RAP optimizes a cost-model objective; allow 2% simulation skew.
    assert rap.iteration_us <= dp.iteration_us * 1.02
    assert rap.iteration_us <= dl.iteration_us * 1.02


def test_generated_code_runs_on_real_data():
    """Plan -> codegen -> execute on synthetic Criteo data, end to end."""
    graphs, schema = build_plan(0, rows=512)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=512)
    plan = RapPlanner(workload).plan(graphs)
    module = load_plan_module(generate_plan_module(plan))
    ds = SyntheticCriteoDataset(schema, seed=42)
    batch = ds.batch(512)
    for gpu in module.SCHEDULE:
        module.run_gpu(gpu, batch)
    reference = execute_graph_set(graphs, ds.batch(512))
    for graph in graphs:
        out = graph.output_op.output
        np.testing.assert_array_equal(
            np.asarray(batch.column(out).values),
            np.asarray(reference.column(out).values),
        )


def test_plan_is_contention_free_in_simulation():
    """RAP's defining property: training never slows down (L_delta <= 0)."""
    graphs, schema = build_plan(2, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=2048)
    planner = RapPlanner(workload)
    report = planner.plan_and_evaluate(planner.plan(graphs).graph_set)
    for gpu_result in report.cluster_result.per_gpu:
        assert gpu_result.training_slowdown < 1.02
